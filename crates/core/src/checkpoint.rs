//! Anytime checkpointing: JSONL persistence of the search frontier.
//!
//! A checkpoint file records one `meta` line (problem identity, split
//! depth, and the Heuristic 1 seed solution) followed by one `task` line
//! per fully-explored prefix subtree — the explored-prefix frontier of
//! the root-split search. A resumed run replays the recorded tasks from
//! the file and recomputes only the rest, which makes resume-after-kill
//! bit-identical to the uninterrupted run (see `tests/checkpoint_resume`).
//!
//! Robustness rules:
//!
//! * floats are serialized as `f64` **bit patterns** (hex), because the
//!   JSON layer parses numbers as `f64` through decimal text and the
//!   round-trip invariant is exact equality;
//! * a task line is appended only after its subtree was *exhaustively*
//!   explored (never for a budget-interrupted subtree), and the file is
//!   flushed per line, so killing the process at any point leaves at
//!   worst one truncated trailing line;
//! * the loader stops at the first malformed line — a truncated tail
//!   costs recomputing one subtree, never an error;
//! * the `meta` line carries the problem identity (circuit, sizes,
//!   penalty bits, mode, split depth) and resuming against a different
//!   problem or thread-derived split depth is a typed
//!   [`OptError::Checkpoint`] error.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use svtox_fault::{Fault, Site};
use svtox_obs::json::{self, Value};
use svtox_tech::{Current, Time};

use crate::error::OptError;
use crate::problem::Mode;
use crate::solution::Solution;

/// Where to checkpoint, and whether to resume from existing content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// The JSONL checkpoint file.
    pub path: PathBuf,
    /// Replay recorded tasks before computing fresh ones. Without this
    /// the file is truncated and written fresh.
    pub resume: bool,
}

impl CheckpointSpec {
    /// A fresh checkpoint: truncate `path` and record as the run goes.
    #[must_use]
    pub fn fresh(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            resume: false,
        }
    }

    /// Resume from `path` (fresh if it does not exist), recording newly
    /// finished tasks into the same file.
    #[must_use]
    pub fn resume(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            resume: true,
        }
    }
}

/// The problem identity and seed recorded in the `meta` line.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckpointMeta {
    pub circuit: String,
    pub inputs: usize,
    pub gates: usize,
    pub penalty_bits: u64,
    pub mode: Mode,
    pub k: usize,
    pub seed: Solution,
    /// Which engine/strategy wrote the file (`None` for the classic
    /// single-strategy search). Portfolio members each own a checkpoint
    /// file; the slug stops a resume from replaying another member's
    /// frontier after a file swap.
    pub engine: Option<String>,
}

/// One fully-explored prefix subtree.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TaskRecord {
    pub leaves: u64,
    pub solution: Option<Solution>,
}

/// A parsed checkpoint file.
#[derive(Debug)]
pub(crate) struct LoadedCheckpoint {
    pub meta: CheckpointMeta,
    pub tasks: BTreeMap<usize, TaskRecord>,
}

pub(crate) fn mode_name(mode: Mode) -> &'static str {
    match mode {
        Mode::Proposed => "proposed",
        Mode::StateAndVt => "state-vt",
        Mode::StateOnly => "state-only",
    }
}

fn bits_hex(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

fn parse_bits(v: Option<&Value>) -> Option<f64> {
    let hex = v?.as_str()?;
    u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
}

fn parse_usize(v: Option<&Value>) -> Option<usize> {
    let f = v?.as_f64()?;
    if f.fract() == 0.0 && f >= 0.0 {
        Some(f as usize)
    } else {
        None
    }
}

fn solution_to_json(sol: &Solution) -> String {
    let mut vector = String::with_capacity(sol.vector.len());
    for &b in &sol.vector {
        vector.push(if b { '1' } else { '0' });
    }
    let mut choices = String::new();
    for (i, &c) in sol.choices.iter().enumerate() {
        if i > 0 {
            choices.push(',');
        }
        let _ = write!(choices, "{c}");
    }
    format!(
        "{{\"vector\":\"{vector}\",\"choices\":[{choices}],\"leakage\":\"{}\",\"delay\":\"{}\",\"leaves\":{}}}",
        bits_hex(sol.leakage.value()),
        bits_hex(sol.delay.value()),
        sol.leaves_explored,
    )
}

fn solution_from_json(v: &Value) -> Option<Solution> {
    let vector: Vec<bool> = v
        .get("vector")?
        .as_str()?
        .chars()
        .map(|c| c == '1')
        .collect();
    let choices: Option<Vec<u8>> = match v.get("choices")? {
        Value::Arr(items) => items
            .iter()
            .map(|item| {
                let f = item.as_f64()?;
                u8::try_from(f as i64).ok()
            })
            .collect(),
        _ => None,
    };
    Some(Solution {
        vector,
        choices: choices?,
        leakage: Current::new(parse_bits(v.get("leakage"))?),
        delay: Time::new(parse_bits(v.get("delay"))?),
        runtime: Duration::ZERO,
        leaves_explored: parse_usize(v.get("leaves"))?,
    })
}

fn meta_from_json(v: &Value) -> Option<CheckpointMeta> {
    let mode = match v.get("mode")?.as_str()? {
        "proposed" => Mode::Proposed,
        "state-vt" => Mode::StateAndVt,
        "state-only" => Mode::StateOnly,
        _ => return None,
    };
    Some(CheckpointMeta {
        circuit: v.get("circuit")?.as_str()?.to_string(),
        inputs: parse_usize(v.get("inputs"))?,
        gates: parse_usize(v.get("gates"))?,
        penalty_bits: u64::from_str_radix(v.get("penalty")?.as_str()?, 16).ok()?,
        mode,
        k: parse_usize(v.get("k"))?,
        seed: solution_from_json(v.get("seed")?)?,
        // Absent in pre-portfolio files; lenient so old checkpoints load.
        engine: v
            .get("engine")
            .and_then(Value::as_str)
            .map(ToString::to_string),
    })
}

/// Loads a checkpoint file. `Ok(None)` when the file does not exist.
///
/// # Errors
///
/// [`OptError::Checkpoint`] when the file exists but its `meta` line is
/// unreadable — everything after the meta degrades gracefully instead
/// (a malformed or truncated task line stops the replay there).
pub(crate) fn load(path: &Path) -> Result<Option<LoadedCheckpoint>, OptError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(OptError::Checkpoint(format!(
                "cannot open {}: {e}",
                path.display()
            )))
        }
    };
    let mut lines = BufReader::new(file).lines();
    let meta_line = match lines.next() {
        Some(Ok(line)) => line,
        _ => {
            return Err(OptError::Checkpoint(format!(
                "{}: missing meta line",
                path.display()
            )))
        }
    };
    let meta = json::parse(&meta_line)
        .ok()
        .as_ref()
        .filter(|v| v.get("type").and_then(Value::as_str) == Some("meta"))
        .and_then(meta_from_json)
        .ok_or_else(|| OptError::Checkpoint(format!("{}: unreadable meta line", path.display())))?;
    let mut tasks = BTreeMap::new();
    for line in lines {
        let Ok(line) = line else { break };
        let Ok(v) = json::parse(&line) else { break };
        if v.get("type").and_then(Value::as_str) != Some("task") {
            break;
        }
        let (Some(index), Some(leaves)) =
            (parse_usize(v.get("index")), parse_usize(v.get("leaves")))
        else {
            break;
        };
        let solution = match v.get("solution") {
            Some(Value::Null) | None => None,
            Some(sol) => match solution_from_json(sol) {
                Some(s) => Some(s),
                None => break,
            },
        };
        tasks.insert(
            index,
            TaskRecord {
                leaves: leaves as u64,
                solution,
            },
        );
    }
    Ok(Some(LoadedCheckpoint { meta, tasks }))
}

/// Appends task lines as subtrees finish, flushing per line.
///
/// Writes route through the injected [`Fault`] handle's `io.write` site,
/// so chaos plans can fail checkpoint persistence deterministically: a
/// failed meta write is a typed [`OptError::Checkpoint`], a failed task
/// line is a warning (the search continues, the subtree is recomputed on
/// resume).
pub(crate) struct CheckpointWriter {
    file: Mutex<File>,
    path: PathBuf,
    fault: Fault,
}

impl CheckpointWriter {
    /// Truncates `path` and writes the meta line.
    pub(crate) fn create(
        path: &Path,
        meta: &CheckpointMeta,
        fault: &Fault,
    ) -> Result<Self, OptError> {
        fault
            .check_io(
                Site::FileWrite,
                &format!("checkpoint meta {}", path.display()),
            )
            .map_err(|e| OptError::Checkpoint(e.to_string()))?;
        let mut file = File::create(path)
            .map_err(|e| OptError::Checkpoint(format!("cannot create {}: {e}", path.display())))?;
        let mut escaped = String::new();
        json::escape_into(&mut escaped, &meta.circuit);
        let engine = meta.engine.as_ref().map_or_else(String::new, |slug| {
            let mut e = String::new();
            json::escape_into(&mut e, slug);
            format!(",\"engine\":{e}")
        });
        let line = format!(
            "{{\"type\":\"meta\",\"version\":1,\"circuit\":{escaped},\"inputs\":{},\"gates\":{},\"penalty\":\"{:016x}\",\"mode\":\"{}\",\"k\":{}{engine},\"seed\":{}}}\n",
            meta.inputs,
            meta.gates,
            meta.penalty_bits,
            mode_name(meta.mode),
            meta.k,
            solution_to_json(&meta.seed),
        );
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| OptError::Checkpoint(format!("cannot write {}: {e}", path.display())))?;
        Ok(Self {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            fault: fault.clone(),
        })
    }

    /// Opens `path` for appending (the resume case: meta already there).
    pub(crate) fn append(path: &Path, fault: &Fault) -> Result<Self, OptError> {
        let file = OpenOptions::new().append(true).open(path).map_err(|e| {
            OptError::Checkpoint(format!("cannot append to {}: {e}", path.display()))
        })?;
        Ok(Self {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            fault: fault.clone(),
        })
    }

    /// Records one fully-explored subtree. Write failures (real or
    /// injected at `io.write`) are reported to stderr once per call but
    /// never fail the search — the checkpoint is an aid, not a
    /// dependency.
    pub(crate) fn record_task(&self, index: usize, leaves: u64, solution: Option<&Solution>) {
        let sol = solution.map_or_else(|| "null".to_string(), solution_to_json);
        let line = format!(
            "{{\"type\":\"task\",\"index\":{index},\"leaves\":{leaves},\"solution\":{sol}}}\n"
        );
        let mut file = self.file.lock().expect("checkpoint lock is never poisoned");
        let written = self
            .fault
            .check_io(Site::FileWrite, "checkpoint task line")
            .and_then(|()| file.write_all(line.as_bytes()))
            .and_then(|()| file.flush());
        if let Err(e) = written {
            eprintln!(
                "warning: checkpoint write to {} failed: {e}",
                self.path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_solution() -> Solution {
        Solution {
            vector: vec![true, false, true],
            choices: vec![0, 3, 1, 2],
            leakage: Current::new(123.456_789_012_345),
            delay: Time::new(0.1 + 0.2), // deliberately not exactly 0.3
            runtime: Duration::from_millis(5),
            leaves_explored: 17,
        }
    }

    fn sample_meta() -> CheckpointMeta {
        CheckpointMeta {
            circuit: "unit \"quoted\"".to_string(),
            inputs: 3,
            gates: 4,
            penalty_bits: 0.05f64.to_bits(),
            mode: Mode::Proposed,
            k: 2,
            seed: sample_solution(),
            engine: None,
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("svtox-ckpt-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn solution_floats_round_trip_bit_exactly() {
        let sol = sample_solution();
        let text = solution_to_json(&sol);
        let parsed = solution_from_json(&json::parse(&text).expect("valid json"))
            .expect("well-formed solution");
        assert_eq!(parsed.vector, sol.vector);
        assert_eq!(parsed.choices, sol.choices);
        assert_eq!(
            parsed.leakage.value().to_bits(),
            sol.leakage.value().to_bits()
        );
        assert_eq!(parsed.delay.value().to_bits(), sol.delay.value().to_bits());
        assert_eq!(parsed.leaves_explored, sol.leaves_explored);
    }

    #[test]
    fn write_then_load_round_trips_meta_and_tasks() {
        let path = temp_path("roundtrip");
        let meta = sample_meta();
        let writer = CheckpointWriter::create(&path, &meta, Fault::disabled_ref()).expect("create");
        writer.record_task(0, 4, Some(&sample_solution()));
        writer.record_task(2, 7, None);
        drop(writer);

        let cp = load(&path).expect("load").expect("file exists");
        assert_eq!(cp.meta.circuit, meta.circuit);
        assert_eq!(cp.meta.penalty_bits, meta.penalty_bits);
        assert_eq!(cp.meta.mode, Mode::Proposed);
        assert_eq!(cp.meta.k, 2);
        assert_eq!(cp.meta.engine, None, "classic files have no engine tag");
        assert_eq!(cp.meta.seed.choices, meta.seed.choices);
        assert_eq!(cp.tasks.len(), 2);
        assert_eq!(cp.tasks[&0].leaves, 4);
        assert!(cp.tasks[&0].solution.is_some());
        assert_eq!(cp.tasks[&2].leaves, 7);
        assert!(cp.tasks[&2].solution.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn engine_tag_round_trips_and_old_files_stay_loadable() {
        let path = temp_path("engine");
        let mut meta = sample_meta();
        meta.engine = Some("h2-natural".to_string());
        let writer = CheckpointWriter::create(&path, &meta, Fault::disabled_ref()).expect("create");
        writer.record_task(1, 3, None);
        drop(writer);
        let cp = load(&path).expect("load").expect("file exists");
        assert_eq!(cp.meta.engine.as_deref(), Some("h2-natural"));
        assert_eq!(cp.tasks.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_trailing_line_is_tolerated() {
        let path = temp_path("truncated");
        let writer =
            CheckpointWriter::create(&path, &sample_meta(), Fault::disabled_ref()).expect("create");
        writer.record_task(0, 4, Some(&sample_solution()));
        drop(writer);
        // Simulate a mid-write kill: append half a task line.
        let mut file = OpenOptions::new().append(true).open(&path).expect("open");
        file.write_all(b"{\"type\":\"task\",\"index\":1,\"le")
            .expect("append");
        drop(file);

        let cp = load(&path).expect("load").expect("file exists");
        assert_eq!(cp.tasks.len(), 1, "the torn line is dropped");
        assert!(cp.tasks.contains_key(&0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_fresh_start_and_bad_meta_is_typed() {
        assert!(load(Path::new("/nonexistent/svtox.ckpt"))
            .expect("missing is fine")
            .is_none());

        let path = temp_path("badmeta");
        std::fs::write(&path, "not json at all\n").expect("write");
        let err = load(&path).expect_err("meta must parse");
        assert!(matches!(err, OptError::Checkpoint(_)), "got {err:?}");
        assert!(err.to_string().contains("meta"));
        std::fs::remove_file(&path).ok();
    }
}
