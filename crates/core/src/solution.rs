//! Optimization results.

use std::fmt;
use std::time::Duration;

use svtox_sim::Simulator;
use svtox_sta::{GateConfig, Sta};
use svtox_tech::{Current, Time};

use crate::error::OptError;
use crate::problem::Problem;

/// A simultaneous state + `Vt`/`Tox` assignment and its figures of merit.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The standby input vector (by primary-input position).
    pub vector: Vec<bool>,
    /// Per-gate option choice: index into
    /// `options_for(gate state under vector)`.
    pub choices: Vec<u8>,
    /// Total standby leakage of the assignment.
    pub leakage: Current,
    /// Circuit delay of the assignment.
    pub delay: Time,
    /// Wall-clock time the search took.
    pub runtime: Duration,
    /// State-tree leaves fully evaluated during the search.
    pub leaves_explored: usize,
}

impl Solution {
    /// Re-derives leakage and delay of this solution from scratch
    /// (fresh simulation + fresh timing analysis) and checks they agree
    /// with the recorded values.
    ///
    /// This is the integration-test oracle: the incremental engines inside
    /// the search must match a cold evaluation.
    ///
    /// # Errors
    ///
    /// Returns an error if the library lookup fails.
    ///
    /// # Panics
    ///
    /// Panics if the recorded figures disagree with the recomputation by
    /// more than numerical noise.
    pub fn verify(&self, problem: &Problem<'_>) -> Result<(), OptError> {
        let (leakage, delay) = self.evaluate(problem)?;
        assert!(
            (leakage.value() - self.leakage.value()).abs() < 1e-6 * (1.0 + leakage.value()),
            "recorded leakage {} vs recomputed {leakage}",
            self.leakage
        );
        assert!(
            (delay.value() - self.delay.value()).abs() < 1e-6 * (1.0 + delay.value()),
            "recorded delay {} vs recomputed {delay}",
            self.delay
        );
        Ok(())
    }

    /// Recomputes `(leakage, delay)` of this solution from scratch.
    ///
    /// # Errors
    ///
    /// Returns an error if the library lookup fails.
    pub fn evaluate(&self, problem: &Problem<'_>) -> Result<(Current, Time), OptError> {
        let netlist = problem.netlist();
        let mut sim = Simulator::new(netlist);
        sim.set_inputs(&self.vector);
        let mut sta = Sta::new(netlist, problem.library(), problem.timing())?;
        let mut leakage = Current::ZERO;
        for (gid, gate) in netlist.gates() {
            let state = sim.gate_state(gid);
            let opt = problem.option(gate.kind(), state, self.choices[gid.index()]);
            leakage += opt.leakage();
            sta.set_gate(gid, GateConfig::from(opt));
        }
        Ok((leakage, sta.max_delay()))
    }

    /// Whether two solutions carry the same assignment: vector, per-gate
    /// choices, and bit-identical leakage/delay.
    ///
    /// This is the determinism/resume contract (runtime and the
    /// leaf-exploration count are observational, and the latter varies
    /// with cross-worker prune timing at `threads > 1`).
    #[must_use]
    pub fn same_assignment(&self, other: &Solution) -> bool {
        self.vector == other.vector
            && self.choices == other.choices
            && self.leakage.value().to_bits() == other.leakage.value().to_bits()
            && self.delay.value().to_bits() == other.delay.value().to_bits()
    }

    /// The reduction factor relative to a reference leakage (the `X`
    /// columns of the paper's tables).
    #[must_use]
    pub fn reduction_vs(&self, reference: Current) -> f64 {
        reference.value() / self.leakage.value()
    }

    /// Splits this solution's leakage into its subthreshold and
    /// gate-tunneling components.
    ///
    /// This exposes the paper's core mechanism: state+`Vt` optimization
    /// collapses `Isub` but leaves `Igate` untouched, while the proposed
    /// method attacks both.
    ///
    /// # Errors
    ///
    /// Returns an error if the library lookup fails.
    pub fn leakage_breakdown(&self, problem: &Problem<'_>) -> Result<(Current, Current), OptError> {
        let netlist = problem.netlist();
        let mut sim = Simulator::new(netlist);
        sim.set_inputs(&self.vector);
        let mut isub = Current::ZERO;
        let mut igate = Current::ZERO;
        for (gid, gate) in netlist.gates() {
            let state = sim.gate_state(gid);
            let opt = problem.option(gate.kind(), state, self.choices[gid.index()]);
            let split = opt.breakdown();
            isub += split.isub;
            igate += split.igate;
        }
        Ok((isub, igate))
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "leakage {:.2} µA, delay {:.1}, {} leaves in {:.2?}",
            self.leakage.as_micro_amps(),
            self.delay,
            self.leaves_explored,
            self.runtime
        )
    }
}
