//! The gate tree: choosing cell versions for a fixed standby vector.
//!
//! For a known input vector every gate's input state is determined, so each
//! gate has at most four applicable versions (its trade-off points for that
//! state), pre-sorted by leakage. The greedy traversal visits gates once and
//! takes the lowest-leakage option that keeps the circuit inside the delay
//! budget — the paper observes ("a single downward traversal of the gate
//! tree tends to produce a high quality leakage solution because the gate
//! tree is searched in a pre-sorted order"), and this is also the first
//! descent that seeds the exact branch and bound's incumbent.

use svtox_cells::InputState;
use svtox_netlist::GateId;
use svtox_sim::{PackedSimulator, PackedVec};
use svtox_sta::{GateConfig, Sta};
use svtox_tech::{Current, Time};

use crate::problem::{GateOrder, Mode, Problem};

/// Result of a gate-tree assignment.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct GateAssignment {
    /// Per-gate option index into `options_for(state)`.
    pub choices: Vec<u8>,
    /// Total leakage.
    pub leakage: Current,
    /// Circuit delay under the assignment.
    pub delay: Time,
}

/// Per-gate states under a fixed vector.
///
/// Runs on the word-level simulator (vector broadcast into lane 0): a
/// single branch-free sweep plus an allocation-free bitmask fold per gate,
/// since the search calls this at every leaf it evaluates.
pub(crate) fn gate_states(problem: &Problem<'_>, vector: &[bool]) -> Vec<InputState> {
    let netlist = problem.netlist();
    let sim = PackedSimulator::with_inputs(netlist, &PackedVec::broadcast(vector));
    netlist
        .gates()
        .map(|(gid, _)| sim.gate_state(gid, 0))
        .collect()
}

/// Visits gates in the configured order.
fn gate_visit_order(
    problem: &Problem<'_>,
    states: &[InputState],
    mode: Mode,
    order: GateOrder,
) -> Vec<GateId> {
    let netlist = problem.netlist();
    let mut gates: Vec<GateId> = netlist.gates().map(|(gid, _)| gid).collect();
    match order {
        GateOrder::Topological => gates = netlist.topo_order().to_vec(),
        GateOrder::SavingsDescending => {
            let saving = |gid: &GateId| -> f64 {
                let kind = netlist.gate(*gid).kind();
                let s = states[gid.index()];
                problem.fast_leak(kind, s).value() - problem.min_leak(kind, s, mode).value()
            };
            gates.sort_by(|a, b| saving(b).partial_cmp(&saving(a)).expect("finite leakages"));
        }
    }
    gates
}

/// Greedy single traversal of the gate tree (the heuristics' leaf
/// evaluation). `sta` must arrive in the all-fast configuration and is
/// returned to it before the function exits.
pub(crate) fn greedy_assign(
    problem: &Problem<'_>,
    states: &[InputState],
    mode: Mode,
    order: GateOrder,
    budget: Time,
    sta: &mut Sta<'_>,
) -> GateAssignment {
    let netlist = problem.netlist();
    let mut choices: Vec<u8> = netlist
        .gates()
        .map(|(gid, gate)| problem.fast_index(gate.kind(), states[gid.index()]))
        .collect();
    let mut leakage: Current = netlist
        .gates()
        .map(|(gid, gate)| problem.fast_leak(gate.kind(), states[gid.index()]))
        .sum();

    // Tolerate float noise at the budget boundary.
    let budget_eps = budget + Time::new(1e-9 * (1.0 + budget.value()));
    let visit = gate_visit_order(problem, states, mode, order);
    let mut touched: Vec<GateId> = Vec::with_capacity(visit.len());
    for gid in visit {
        let kind = netlist.gate(gid).kind();
        let state = states[gid.index()];
        let fast_idx = problem.fast_index(kind, state);
        let prev = sta.gate_config(gid).clone();
        for &idx in problem.allowed(kind, state, mode) {
            if idx == fast_idx {
                // The fast option is always feasible; keep the default.
                break;
            }
            let opt = problem.option(kind, state, idx);
            sta.set_gate(gid, GateConfig::from(opt));
            if sta.max_delay() <= budget_eps {
                leakage += opt.leakage() - problem.fast_leak(kind, state);
                choices[gid.index()] = idx;
                touched.push(gid);
                break;
            }
            sta.set_gate(gid, prev.clone());
        }
    }
    let delay = sta.max_delay();
    // Restore the analyzer for the next leaf.
    for gid in touched {
        let gate = netlist.gate(gid);
        let cell = problem
            .library()
            .cell(gate.kind())
            .expect("validated kinds");
        sta.set_gate(
            gid,
            GateConfig::identity(cell.fast_version(), gate.kind().arity()),
        );
    }
    GateAssignment {
        choices,
        leakage,
        delay,
    }
}

/// Exact branch and bound over the gate tree for a fixed vector: finds the
/// minimum-leakage feasible assignment. Exponential in principle; pruning by
/// `partial + suffix-min ≥ incumbent` keeps small circuits tractable.
///
/// `sta` must arrive all-fast and is restored before returning.
pub(crate) fn exact_assign(
    problem: &Problem<'_>,
    states: &[InputState],
    mode: Mode,
    budget: Time,
    sta: &mut Sta<'_>,
) -> GateAssignment {
    let netlist = problem.netlist();
    // Seed the incumbent with the greedy result.
    let mut best = greedy_assign(
        problem,
        states,
        mode,
        GateOrder::SavingsDescending,
        budget,
        sta,
    );

    let visit = gate_visit_order(problem, states, mode, GateOrder::SavingsDescending);
    let n = visit.len();
    // suffix_min[i] = sum of per-gate minimum leakage over visit[i..].
    let mut suffix_min = vec![0.0; n + 1];
    for i in (0..n).rev() {
        let gid = visit[i];
        let kind = netlist.gate(gid).kind();
        suffix_min[i] =
            suffix_min[i + 1] + problem.min_leak(kind, states[gid.index()], mode).value();
    }
    let budget_eps = budget + Time::new(1e-9 * (1.0 + budget.value()));

    struct Frame {
        depth: usize,
        /// Options not yet tried at this depth.
        remaining: Vec<u8>,
        /// Leakage accumulated above this depth.
        partial: f64,
    }

    let fast_cfg = |gid: GateId| {
        let gate = netlist.gate(gid);
        let cell = problem.library().cell(gate.kind()).expect("validated");
        GateConfig::identity(cell.fast_version(), gate.kind().arity())
    };

    let mut best_choices = best.choices.clone();
    let mut best_leak = best.leakage.value();
    let mut current: Vec<u8> = netlist
        .gates()
        .map(|(gid, gate)| problem.fast_index(gate.kind(), states[gid.index()]))
        .collect();

    // Undecided gates must contribute a delay *floor*, not the identity-fast
    // delay: an option's pin permutation can route a late signal onto a
    // faster physical pin and beat identity, so pruning a prefix against
    // the identity-fast completion can discard feasible optima. Relaxed
    // gates give a true lower bound; decided gates use their real option.
    for &gid in &visit {
        sta.set_relaxed(gid, true);
    }

    let mut stack = vec![Frame {
        depth: 0,
        remaining: option_list(problem, netlist, &visit, states, mode, 0),
        partial: 0.0,
    }];
    while let Some(frame) = stack.last_mut() {
        let depth = frame.depth;
        if depth == n {
            // Leaf: every gate is decided, so the feasibility check at the
            // last descent was exact; record if better.
            let partial = frame.partial;
            if partial < best_leak {
                best_leak = partial;
                best_choices = current.clone();
            }
            stack.pop();
            if let Some(parent) = stack.last() {
                sta.set_relaxed(visit[parent.depth], true);
            }
            continue;
        }
        let gid = visit[depth];
        let kind = netlist.gate(gid).kind();
        let state = states[gid.index()];
        let Some(idx) = frame.remaining.pop() else {
            // Exhausted this level; undo and backtrack.
            stack.pop();
            if let Some(parent) = stack.last() {
                sta.set_relaxed(visit[parent.depth], true);
            }
            continue;
        };
        let opt = problem.option(kind, state, idx);
        let leak = opt.leakage().value();
        let partial = frame.partial + leak;
        if partial + suffix_min[depth + 1] >= best_leak {
            continue; // prune this option (others may still fit)
        }
        sta.set_gate(gid, GateConfig::from(opt));
        sta.set_relaxed(gid, false);
        if sta.max_delay() > budget_eps {
            sta.set_relaxed(gid, true);
            continue;
        }
        current[gid.index()] = idx;
        let next_remaining = if depth + 1 < n {
            option_list(problem, netlist, &visit, states, mode, depth + 1)
        } else {
            Vec::new()
        };
        stack.push(Frame {
            depth: depth + 1,
            remaining: next_remaining,
            partial,
        });
    }
    // Clear relaxation and restore all-fast.
    for &gid in &visit {
        sta.set_relaxed(gid, false);
        sta.set_gate(gid, fast_cfg(gid));
    }

    // Recompute the delay of the winning assignment.
    for (gid, gate) in netlist.gates() {
        let opt = problem.option(gate.kind(), states[gid.index()], best_choices[gid.index()]);
        sta.set_gate(gid, GateConfig::from(opt));
    }
    let delay = sta.max_delay();
    for &gid in &visit {
        sta.set_gate(gid, fast_cfg(gid));
    }
    best.choices = best_choices;
    best.leakage = Current::new(best_leak);
    best.delay = delay;
    best
}

/// The options of the gate at `visit[depth]`, in the order the DFS should
/// *pop* them (worst first, so the best is tried first).
fn option_list(
    problem: &Problem<'_>,
    netlist: &svtox_netlist::Netlist,
    visit: &[GateId],
    states: &[InputState],
    mode: Mode,
    depth: usize,
) -> Vec<u8> {
    let gid = visit[depth];
    let kind = netlist.gate(gid).kind();
    let mut v: Vec<u8> = problem.allowed(kind, states[gid.index()], mode).to_vec();
    v.reverse();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use svtox_cells::{Library, LibraryOptions};
    use svtox_netlist::generators::{random_dag, RandomDagSpec};
    use svtox_netlist::Netlist;
    use svtox_sta::TimingConfig;
    use svtox_tech::Technology;

    fn setup(gates: usize) -> (Netlist, Library) {
        let spec = RandomDagSpec::new(format!("ga{gates}"), 8, 4, gates, 6);
        (
            random_dag(&spec).unwrap(),
            Library::new(Technology::predictive_65nm(), LibraryOptions::default()).unwrap(),
        )
    }

    fn assignment_delay(problem: &Problem<'_>, states: &[InputState], choices: &[u8]) -> Time {
        let netlist = problem.netlist();
        let mut sta = Sta::new(netlist, problem.library(), problem.timing()).unwrap();
        for (gid, gate) in netlist.gates() {
            let opt = problem.option(gate.kind(), states[gid.index()], choices[gid.index()]);
            sta.set_gate(gid, GateConfig::from(opt));
        }
        sta.max_delay()
    }

    #[test]
    fn greedy_meets_budget_and_beats_fast() {
        let (n, lib) = setup(60);
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let vector = vec![true; n.num_inputs()];
        let states = gate_states(&problem, &vector);
        let budget = problem.delay_budget(crate::DelayPenalty::new(0.10).unwrap());
        let mut sta = Sta::new(&n, &lib, problem.timing()).unwrap();
        let result = greedy_assign(
            &problem,
            &states,
            Mode::Proposed,
            GateOrder::SavingsDescending,
            budget,
            &mut sta,
        );
        assert!(result.delay <= budget + Time::new(1e-6));
        let fast_leak: Current = n
            .gates()
            .map(|(gid, g)| problem.fast_leak(g.kind(), states[gid.index()]))
            .sum();
        assert!(
            result.leakage.value() < 0.7 * fast_leak.value(),
            "greedy {} vs fast {}",
            result.leakage,
            fast_leak
        );
        // Cross-check the recorded delay against a cold STA.
        let cold = assignment_delay(&problem, &states, &result.choices);
        assert!((cold - result.delay).abs() < 1e-6);
    }

    #[test]
    fn greedy_restores_sta_to_fast() {
        let (n, lib) = setup(40);
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let vector = vec![false; n.num_inputs()];
        let states = gate_states(&problem, &vector);
        let budget = problem.delay_budget(crate::DelayPenalty::new(0.25).unwrap());
        let mut sta = Sta::new(&n, &lib, problem.timing()).unwrap();
        let before = sta.max_delay();
        let _ = greedy_assign(
            &problem,
            &states,
            Mode::Proposed,
            GateOrder::SavingsDescending,
            budget,
            &mut sta,
        );
        assert!((sta.max_delay() - before).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_still_allows_offpath_upgrades() {
        let (n, lib) = setup(60);
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let vector = vec![true; n.num_inputs()];
        let states = gate_states(&problem, &vector);
        let budget = problem.d_fast();
        let mut sta = Sta::new(&n, &lib, problem.timing()).unwrap();
        let result = greedy_assign(
            &problem,
            &states,
            Mode::Proposed,
            GateOrder::SavingsDescending,
            budget,
            &mut sta,
        );
        let fast_leak: Current = n
            .gates()
            .map(|(gid, g)| problem.fast_leak(g.kind(), states[gid.index()]))
            .sum();
        // Off-critical gates have slack even at zero penalty (Figure 5's
        // "gains at even zero delay penalty").
        assert!(result.leakage < fast_leak);
        assert!(result.delay <= budget + Time::new(1e-6));
    }

    #[test]
    fn exact_never_worse_than_greedy() {
        let (n, lib) = setup(14);
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        for bits in [0u32, 0b1010_1010, 0xff] {
            let vector: Vec<bool> = (0..n.num_inputs())
                .map(|i| bits >> (i % 8) & 1 == 1)
                .collect();
            let states = gate_states(&problem, &vector);
            let budget = problem.delay_budget(crate::DelayPenalty::new(0.05).unwrap());
            let mut sta = Sta::new(&n, &lib, problem.timing()).unwrap();
            let greedy = greedy_assign(
                &problem,
                &states,
                Mode::Proposed,
                GateOrder::SavingsDescending,
                budget,
                &mut sta,
            );
            let exact = exact_assign(&problem, &states, Mode::Proposed, budget, &mut sta);
            assert!(
                exact.leakage.value() <= greedy.leakage.value() + 1e-9,
                "exact {} vs greedy {}",
                exact.leakage,
                greedy.leakage
            );
            assert!(exact.delay <= budget + Time::new(1e-6));
            let cold = assignment_delay(&problem, &states, &exact.choices);
            assert!((cold - exact.delay).abs() < 1e-6);
        }
    }

    /// Brute force over every option combination of a tiny circuit: the
    /// exact gate-tree branch and bound must find the true optimum.
    #[test]
    fn exact_matches_brute_force() {
        let spec = RandomDagSpec::new("ga-brute", 4, 2, 7, 3);
        let n = random_dag(&spec).unwrap();
        let lib = Library::new(Technology::predictive_65nm(), LibraryOptions::default()).unwrap();
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        for vec_bits in [0u32, 0b1010, 0b1111] {
            let vector: Vec<bool> = (0..n.num_inputs())
                .map(|i| vec_bits >> i & 1 == 1)
                .collect();
            let states = gate_states(&problem, &vector);
            let budget = problem.delay_budget(crate::DelayPenalty::new(0.10).unwrap());
            // Enumerate the full cross product of allowed options.
            let per_gate: Vec<Vec<u8>> = n
                .gates()
                .map(|(gid, g)| {
                    problem
                        .allowed(g.kind(), states[gid.index()], Mode::Proposed)
                        .to_vec()
                })
                .collect();
            let mut best = f64::INFINITY;
            let mut counters = vec![0usize; per_gate.len()];
            'outer: loop {
                let choices: Vec<u8> = counters
                    .iter()
                    .zip(&per_gate)
                    .map(|(&c, opts)| opts[c])
                    .collect();
                let delay = assignment_delay(&problem, &states, &choices);
                if delay <= budget + Time::new(1e-9) {
                    let leak: f64 = n
                        .gates()
                        .map(|(gid, g)| {
                            problem
                                .option(g.kind(), states[gid.index()], choices[gid.index()])
                                .leakage()
                                .value()
                        })
                        .sum();
                    best = best.min(leak);
                }
                // Odometer increment.
                for d in 0..counters.len() {
                    counters[d] += 1;
                    if counters[d] < per_gate[d].len() {
                        continue 'outer;
                    }
                    counters[d] = 0;
                }
                break;
            }
            let mut sta = Sta::new(&n, &lib, problem.timing()).unwrap();
            let exact = exact_assign(&problem, &states, Mode::Proposed, budget, &mut sta);
            assert!(
                (exact.leakage.value() - best).abs() < 1e-6 * (1.0 + best),
                "vector {vec_bits:b}: exact {} vs brute force {best}",
                exact.leakage
            );
        }
    }

    #[test]
    fn modes_order_leakage() {
        let (n, lib) = setup(80);
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let vector: Vec<bool> = (0..n.num_inputs()).map(|i| i % 2 == 0).collect();
        let states = gate_states(&problem, &vector);
        let budget = problem.delay_budget(crate::DelayPenalty::new(0.10).unwrap());
        let mut sta = Sta::new(&n, &lib, problem.timing()).unwrap();
        let mut results = Vec::new();
        for mode in Mode::ALL {
            results.push(
                greedy_assign(
                    &problem,
                    &states,
                    mode,
                    GateOrder::SavingsDescending,
                    budget,
                    &mut sta,
                )
                .leakage,
            );
        }
        // StateOnly ≥ StateAndVt ≥ Proposed.
        assert!(results[0] >= results[1]);
        assert!(results[1] >= results[2]);
        // And the proposed mode is substantially below Vt-only (the gate
        // leakage it can remove).
        assert!(results[2].value() < 0.8 * results[1].value());
    }

    #[test]
    fn topological_order_also_works() {
        let (n, lib) = setup(60);
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let vector = vec![true; n.num_inputs()];
        let states = gate_states(&problem, &vector);
        let budget = problem.delay_budget(crate::DelayPenalty::new(0.10).unwrap());
        let mut sta = Sta::new(&n, &lib, problem.timing()).unwrap();
        let topo = greedy_assign(
            &problem,
            &states,
            Mode::Proposed,
            GateOrder::Topological,
            budget,
            &mut sta,
        );
        assert!(topo.delay <= budget + Time::new(1e-6));
    }
}
