//! Simultaneous standby-state, `Vt` and `Tox` assignment for total leakage
//! minimization — the core algorithm of the DATE 2004 paper.
//!
//! Given a primitive netlist, a characterized [`svtox_cells::Library`] and a
//! delay budget, the optimizer finds a standby input vector together with a
//! per-gate cell-version (and pin-ordering) assignment that minimizes total
//! standby leakage while the circuit still meets the budget:
//!
//! * [`Optimizer::heuristic1`] — one ordered descent of the state tree, with
//!   a greedy, leakage-sorted traversal of the gate tree at the leaf
//!   (the paper's Heuristic 1);
//! * [`Optimizer::heuristic2`] — Heuristic 1 plus a time-budgeted
//!   branch-and-bound improvement pass over the state tree (Heuristic 2);
//! * [`Optimizer::exact`] — the full two-tree branch and bound (state tree ×
//!   gate tree) with leakage lower-bound pruning, feasible only for small
//!   circuits;
//! * baselines via [`Mode`]: state assignment only, and state+`Vt` (the
//!   DAC 2003 predecessor, the paper's ref.\[12\], without dual-`Tox`).
//!
//! Delay budgets follow the paper's normalization: a penalty of `p` allows
//! `D_fast + p·(D_slow − D_fast)` where `D_slow` is the delay of the
//! all-high-Vt, all-thick-oxide design (about 2× `D_fast`).
//!
//! # Example
//!
//! ```
//! use svtox_cells::{Library, LibraryOptions};
//! use svtox_core::{DelayPenalty, Mode, Problem};
//! use svtox_netlist::generators::benchmark;
//! use svtox_sim::random_average_leakage;
//! use svtox_sta::TimingConfig;
//! use svtox_tech::Technology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = Library::new(Technology::predictive_65nm(), LibraryOptions::default())?;
//! let c432 = benchmark("c432")?;
//! let problem = Problem::new(&c432, &lib, TimingConfig::default())?;
//! let sol = problem
//!     .optimizer(DelayPenalty::new(0.05)?, Mode::Proposed)
//!     .heuristic1()?;
//! let avg = random_average_leakage(&c432, &lib, 1000, 42)?.total;
//! // The paper reports 3.6x for c432 at a 5 % delay penalty.
//! assert!(avg.value() / sol.leakage.value() > 2.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod error;
mod gate_assign;
mod outcome;
mod problem;
mod solution;
mod state_search;

pub use checkpoint::CheckpointSpec;
pub use error::OptError;
pub use outcome::{DegradeReason, RunOutcome};
pub use problem::{DelayPenalty, GateOrder, InputOrder, Mode, Problem};
pub use solution::Solution;
pub use state_search::eco::EcoReport;
pub use state_search::portfolio::{
    self, BranchOrder, MemberReport, MemberStatus, PortfolioConfig, PortfolioOutcome,
    ProvenanceEntry, Strategy,
};
pub use state_search::Optimizer;
pub use state_search::WarmStats;

// Re-exported so optimizer callers can configure the parallel searches,
// attach observability, and inject faults without depending on the
// engine crates directly.
pub use svtox_exec::{
    Budget, CancelToken, ExecConfig, ExecError, RetryPolicy, SearchStats, SharedMinF64,
};
pub use svtox_fault::Fault;
pub use svtox_obs::Obs;
