//! Parallel state-tree search: root splitting with a shared incumbent.
//!
//! The serial searches ([`Optimizer::heuristic2`], [`Optimizer::exact`])
//! walk the state tree depth first, false branch first. The parallel
//! variants split that tree at the root over the first `k` inputs of the
//! branching order: prefix index `p` fixes input `d` (for `d < k`) to bit
//! `k-1-d` of `p`, so *ascending task index is exactly the serial
//! exploration order*. Each task searches its subtree with the same
//! descent and bounds as the serial code, workers share the incumbent
//! leakage through a [`SharedMinF64`], and the per-task bests reduce with
//! [`min_by_stable`] in task order.
//!
//! Determinism: a task prunes with `>=` against its *task-local*
//! incumbent (exactly the serial rule, confined to the subtree) but only
//! with strict `>` against the shared cross-worker incumbent. The shared
//! bound is always at least the global minimum, so the path to the
//! serial-first optimal leaf can never be cut by a bound that merely
//! *equals* it — whichever worker finds the optimum first in wall time.
//! Every other subtree either reports a strictly worse value or nothing,
//! and the stable reduction keeps the earliest minimum, which is the
//! serial witness. Results are therefore bit-identical to the serial
//! search for any thread count, while still profiting from cross-worker
//! pruning.

use std::time::Instant;

use svtox_exec::{
    map_tasks, min_by_stable, Budget, ExecConfig, SearchStats, SharedMinF64, WorkerStats,
};
use svtox_fault::Site as FaultSite;
use svtox_sim::Logic;
use svtox_sta::Sta;
use svtox_tech::Time;

use crate::error::OptError;
use crate::gate_assign::{exact_assign, gate_states};
use crate::solution::Solution;

use super::{BoundTracker, Optimizer};

/// Outcome of pre-search warm seeding
/// ([`Optimizer::heuristic2_parallel_warm`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WarmStats {
    /// Candidate vectors offered.
    pub candidates: usize,
    /// Candidates whose length matched the problem and were evaluated.
    pub evaluated: usize,
    /// Best (lowest) warm leakage value, if any candidate was evaluated.
    pub best: Option<f64>,
}

/// How a surviving leaf of the state tree is evaluated.
#[derive(Clone, Copy)]
pub(crate) enum LeafKind {
    /// Greedy gate tree (Heuristics 1/2).
    Greedy,
    /// Exact gate-tree branch and bound.
    Exact,
}

/// Everything one worker reuses across its tasks.
pub(crate) struct WorkerCtx<'p, 'n> {
    pub(crate) sta: Sta<'n>,
    pub(crate) tracker: BoundTracker<'p, 'n>,
    pub(crate) vector: Vec<bool>,
}

/// Number of prefix inputs to split on: enough tasks to keep every worker
/// busy through imbalance (~8 tasks per worker), capped so task setup
/// stays negligible and floored so stealing has room even single-threaded.
pub(crate) fn prefix_depth(threads: usize, num_inputs: usize) -> usize {
    let want = (threads * 8).next_power_of_two().trailing_zeros() as usize;
    want.clamp(3, 10).min(num_inputs)
}

impl<'a> Optimizer<'a> {
    /// **Heuristic 2, parallel**: [`Optimizer::heuristic1`] plus a
    /// parallel branch-and-bound improvement pass over the state tree,
    /// split across the engine's workers.
    ///
    /// The pass honours `exec`'s wall-clock budget (measured from entry,
    /// so it covers the embedded Heuristic 1 descent like the serial
    /// method); with no budget it exhausts the tree. The result is
    /// bit-identical to a generously budgeted serial
    /// [`Optimizer::heuristic2`] for any thread count, and never worse
    /// than Heuristic 1 — an expired budget returns the incumbent.
    ///
    /// # Errors
    ///
    /// Returns an error on library lookup failure.
    pub fn heuristic2_parallel(
        &self,
        exec: &ExecConfig,
    ) -> Result<(Solution, SearchStats), OptError> {
        let (best, stats, _) = self.heuristic2_parallel_warm(exec, &[], None)?;
        Ok((best, stats))
    }

    /// [`Optimizer::heuristic2_parallel`] with two extensions used by ECO
    /// re-optimization and the benchmark harness:
    ///
    /// * `warm_vectors` — candidate input vectors (a previous solution, a
    ///   checkpoint's per-task bests) evaluated as feasible incumbents
    ///   *before* the search. Their values tighten **only** the shared
    ///   cross-worker bound, whose prune is strict `>`; the task-local
    ///   seed stays the Heuristic 1 value exactly as in a cold run, so the
    ///   serial-first witness path is never cut and the returned solution
    ///   is bit-identical to the cold run at any thread count — warm
    ///   seeding changes how fast the search converges, never what it
    ///   returns.
    /// * `shared_out` — a caller-owned incumbent cell (start it at
    ///   `+inf`); the caller can poll it from another thread to record the
    ///   time-to-quality trajectory. `None` uses an internal cell.
    ///
    /// # Errors
    ///
    /// Returns an error on library lookup failure.
    pub fn heuristic2_parallel_warm(
        &self,
        exec: &ExecConfig,
        warm_vectors: &[Vec<bool>],
        shared_out: Option<&SharedMinF64>,
    ) -> Result<(Solution, SearchStats, WarmStats), OptError> {
        let start = Instant::now();
        let budget = exec.budget();
        let seed = self.heuristic1()?;
        let _span = self.obs.span("core.heuristic2_parallel");
        let base_leaves = seed.leaves_explored;
        let shared_local;
        let shared: &SharedMinF64 = match shared_out {
            Some(cell) => {
                cell.update_min(seed.leakage.value());
                cell
            }
            None => {
                shared_local = SharedMinF64::new(seed.leakage.value());
                &shared_local
            }
        };
        let mut warm = WarmStats {
            candidates: warm_vectors.len(),
            evaluated: 0,
            best: None,
        };
        if !warm_vectors.is_empty() {
            let netlist = self.problem.netlist();
            let mut sta = Sta::new(netlist, self.problem.library(), self.problem.timing())?;
            for vector in warm_vectors {
                if vector.len() != netlist.num_inputs() {
                    continue;
                }
                let candidate = self.evaluate_leaf(vector, &mut sta, start, 0);
                warm.evaluated += 1;
                let value = candidate.leakage.value();
                if warm.best.is_none_or(|b| value < b) {
                    warm.best = Some(value);
                }
                shared.update_min(value);
            }
        }
        let (best, stats) =
            self.search_parallel(exec, &budget, shared, Some(seed), LeafKind::Greedy)?;
        let mut best = best.expect("seeded search always has an incumbent");
        best.runtime = start.elapsed();
        best.leaves_explored = base_leaves + stats.leaves_evaluated() as usize;
        Ok((best, stats, warm))
    }

    /// **Exact, parallel**: the two-tree branch and bound of
    /// [`Optimizer::exact`], split across the engine's workers.
    ///
    /// Exhaustive by definition, so any wall-clock budget on `exec` is
    /// ignored — a truncated "exact" answer would be indistinguishable
    /// from a wrong one. The result is bit-identical to the serial
    /// search for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::TooManyInputs`] beyond `max_inputs` primary
    /// inputs, or an error on library lookup failure.
    pub fn exact_parallel(
        &self,
        max_inputs: usize,
        exec: &ExecConfig,
    ) -> Result<(Solution, SearchStats), OptError> {
        let netlist = self.problem.netlist();
        if netlist.num_inputs() > max_inputs {
            return Err(OptError::TooManyInputs {
                inputs: netlist.num_inputs(),
                limit: max_inputs,
            });
        }
        let _span = self.obs.span("core.exact_parallel");
        let start = Instant::now();
        // Surface library errors once, on the caller's thread.
        Sta::new(netlist, self.problem.library(), self.problem.timing())?;
        let budget = Budget::unlimited();
        let shared = SharedMinF64::new(f64::INFINITY);
        let (best, stats) = self.search_parallel(exec, &budget, &shared, None, LeafKind::Exact)?;
        let mut best = best.expect("an unbudgeted search evaluates at least one leaf");
        best.runtime = start.elapsed();
        best.leaves_explored = stats.leaves_evaluated() as usize;
        Ok((best, stats))
    }

    /// Root-split branch and bound common to both parallel searches.
    fn search_parallel(
        &self,
        exec: &ExecConfig,
        budget: &Budget,
        shared: &SharedMinF64,
        seed: Option<Solution>,
        leaf: LeafKind,
    ) -> Result<(Option<Solution>, SearchStats), OptError> {
        let netlist = self.problem.netlist();
        let order = self.input_order();
        let k = prefix_depth(exec.threads(), order.len());
        let num_tasks = 1usize << k;
        let seed_leak = seed.as_ref().map_or(f64::INFINITY, |s| s.leakage.value());
        let delay_budget = self.budget();

        let (results, stats) = map_tasks(
            exec,
            num_tasks,
            budget,
            self.obs,
            |_worker| WorkerCtx {
                // `Sta::new` was already run once by the caller (directly
                // or inside Heuristic 1), so the library is known good.
                sta: Sta::new(netlist, self.problem.library(), self.problem.timing())
                    .expect("library already validated"),
                tracker: BoundTracker::new(self.problem, self.mode),
                vector: vec![false; netlist.num_inputs()],
            },
            |ctx, p, ws| {
                self.search_subtree(
                    ctx,
                    p,
                    k,
                    &order,
                    budget,
                    shared,
                    seed_leak,
                    delay_budget,
                    leaf,
                    ws,
                )
            },
        )?;
        self.obs.add("core.search.nodes", stats.nodes_expanded());
        self.obs.add("core.search.leaves", stats.leaves_evaluated());
        self.obs
            .add("core.search.prunes_local", stats.prunes_local());
        self.obs
            .add("core.search.prunes_shared", stats.prunes_shared());
        self.obs
            .add("core.search.incumbent_updates", stats.incumbent_updates());
        let best = min_by_stable(seed, results, |a, b| a.leakage < b.leakage);
        Ok((best, stats))
    }

    /// Searches the subtree under prefix `p`, returning its best leaf (or
    /// `None` if the whole subtree pruned away or yielded nothing better
    /// than the task-local seed).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn search_subtree(
        &self,
        ctx: &mut WorkerCtx<'a, 'a>,
        p: usize,
        k: usize,
        order: &[usize],
        budget: &Budget,
        shared: &SharedMinF64,
        seed_leak: f64,
        delay_budget: Time,
        leaf: LeafKind,
        ws: &mut WorkerStats,
    ) -> Option<Solution> {
        let task_start = Instant::now();
        let n = order.len();
        // Apply the prefix: depth d takes bit k-1-d of p, making ascending
        // task index the serial (false-first) exploration order.
        for (d, &input) in order.iter().enumerate().take(k) {
            let value = (p >> (k - 1 - d)) & 1 == 1;
            ctx.vector[input] = value;
            ctx.tracker.set_input(input, Logic::from(value));
            ws.nodes_expanded += 1;
        }

        let mut local: Option<Solution> = None;
        let mut local_leak = seed_leak;
        let prefix_bound = ctx.tracker.bound().value();
        let prefix_pruned = if prefix_bound >= local_leak {
            ws.prunes_local += 1;
            true
        } else if prefix_bound > shared.get() {
            ws.prunes_shared += 1;
            true
        } else {
            false
        };

        if !prefix_pruned && k == n {
            // The prefix already decides every input: the task is a leaf.
            ws.leaves_evaluated += 1;
            let candidate = self.evaluate_kind(ctx, leaf, delay_budget, task_start, ws);
            if candidate.leakage.value() < local_leak {
                local_leak = candidate.leakage.value();
                if shared.update_min(local_leak) {
                    ws.incumbent_updates += 1;
                }
                local = Some(candidate);
            }
            if self.fault.fires(FaultSite::CoreLeaf) {
                budget.cancel();
            }
        } else if !prefix_pruned {
            // Same iterative DFS as the serial searches, over depths k..n.
            struct Frame {
                depth: usize,
                remaining: Vec<bool>,
            }
            let mut stack = vec![Frame {
                depth: k,
                remaining: vec![true, false],
            }];
            while let Some(frame) = stack.last_mut() {
                if budget.expired() {
                    break;
                }
                let depth = frame.depth;
                if depth == n {
                    ws.leaves_evaluated += 1;
                    let candidate = self.evaluate_kind(ctx, leaf, delay_budget, task_start, ws);
                    if candidate.leakage.value() < local_leak {
                        local_leak = candidate.leakage.value();
                        if shared.update_min(local_leak) {
                            ws.incumbent_updates += 1;
                        }
                        local = Some(candidate);
                    }
                    // Chaos hook: a mid-search kill, at leaf granularity.
                    if self.fault.fires(FaultSite::CoreLeaf) {
                        budget.cancel();
                    }
                    stack.pop();
                    if let Some(parent) = stack.last() {
                        ctx.tracker.set_input(order[parent.depth], Logic::X);
                    }
                    continue;
                }
                let Some(value) = frame.remaining.pop() else {
                    stack.pop();
                    if let Some(parent) = stack.last() {
                        ctx.tracker.set_input(order[parent.depth], Logic::X);
                    }
                    continue;
                };
                let input = order[depth];
                ctx.tracker.set_input(input, Logic::from(value));
                ws.nodes_expanded += 1;
                let bound = ctx.tracker.bound().value();
                // `>=` against the task-local incumbent (the serial rule);
                // strict `>` against the shared one so an equal cross-worker
                // bound can never cut the serial witness path.
                if bound >= local_leak {
                    ws.prunes_local += 1;
                    ctx.tracker.set_input(input, Logic::X);
                    continue;
                }
                if bound > shared.get() {
                    ws.prunes_shared += 1;
                    ctx.tracker.set_input(input, Logic::X);
                    continue;
                }
                ctx.vector[input] = value;
                stack.push(Frame {
                    depth: depth + 1,
                    remaining: vec![true, false],
                });
            }
            // Unwind whatever the budget interrupted.
            for frame in stack.iter().rev().skip(1) {
                ctx.tracker.set_input(order[frame.depth], Logic::X);
            }
        }

        for &input in order.iter().take(k) {
            ctx.tracker.set_input(input, Logic::X);
        }
        local
    }

    /// Evaluates the fully-decided vector in `ctx` per the leaf kind.
    fn evaluate_kind(
        &self,
        ctx: &mut WorkerCtx<'a, 'a>,
        leaf: LeafKind,
        delay_budget: Time,
        task_start: Instant,
        ws: &WorkerStats,
    ) -> Solution {
        match leaf {
            LeafKind::Greedy => self.evaluate_leaf(
                &ctx.vector,
                &mut ctx.sta,
                task_start,
                ws.leaves_evaluated as usize,
            ),
            LeafKind::Exact => {
                let states = gate_states(self.problem, &ctx.vector);
                let assignment =
                    exact_assign(self.problem, &states, self.mode, delay_budget, &mut ctx.sta);
                Solution {
                    vector: ctx.vector.clone(),
                    choices: assignment.choices,
                    leakage: assignment.leakage,
                    delay: assignment.delay,
                    runtime: task_start.elapsed(),
                    leaves_explored: ws.leaves_evaluated as usize,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_depth_scales_with_threads_and_clamps() {
        assert_eq!(prefix_depth(1, 20), 3);
        assert_eq!(prefix_depth(4, 20), 5);
        assert_eq!(prefix_depth(8, 20), 6);
        assert_eq!(prefix_depth(1024, 20), 10);
        assert_eq!(prefix_depth(8, 4), 4);
        assert_eq!(prefix_depth(1, 0), 0);
    }

    #[test]
    fn prefix_bits_follow_serial_order() {
        // Prefix 0 is all-false (the first serial branch), the last prefix
        // all-true, and bit k-1-d of p drives depth d.
        let k = 3;
        let decoded: Vec<Vec<bool>> = (0..1usize << k)
            .map(|p| (0..k).map(|d| (p >> (k - 1 - d)) & 1 == 1).collect())
            .collect();
        assert_eq!(decoded[0], vec![false, false, false]);
        assert_eq!(decoded[1], vec![false, false, true]);
        assert_eq!(decoded[6], vec![true, true, false]);
        assert_eq!(decoded[7], vec![true, true, true]);
    }
}
