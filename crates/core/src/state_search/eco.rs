//! ECO re-optimization: re-running the search after a netlist edit.
//!
//! [`Optimizer::rerun_after_edit`] optimizes the *post-edit* problem while
//! reusing what the pre-edit run learned:
//!
//! * the previous solution's input vector, and
//! * the per-task best vectors recorded in a PR 5 checkpoint file,
//!
//! are re-evaluated as feasible incumbents on the post-edit problem and
//! fed to the shared cross-worker bound before the branch and bound
//! starts (see [`Optimizer::heuristic2_parallel_warm`]).
//!
//! # Soundness: value reuse, not exploration skipping
//!
//! Recorded *subtree exploration* cannot be replayed after a functional
//! edit — a rewire preserves every count a checkpoint's meta line records
//! while changing the circuit function, so "the subtree was fully
//! explored" no longer means anything about the post-edit tree. What
//! *does* survive an edit is that any complete input vector is still a
//! complete input vector: re-evaluating it on the post-edit problem
//! yields a genuine feasible leaf value, an upper bound on the post-edit
//! optimum. Feeding such values to the shared incumbent (whose prune is
//! strict `>`) can only speed convergence; the returned solution is
//! bit-identical to a cold run at any thread count. Edits are mostly
//! local (Kitahara-style selective methodologies), so the previous
//! vector's value usually lands close to the new optimum and prunes most
//! of the tree immediately.

use std::path::Path;

use svtox_exec::{ExecConfig, SearchStats, SharedMinF64};
use svtox_netlist::EditTrace;

use crate::checkpoint;
use crate::error::OptError;
use crate::solution::Solution;

use super::parallel::WarmStats;
use super::Optimizer;

/// What an ECO re-optimization did: the new solution plus reuse stats.
#[derive(Debug, Clone)]
pub struct EcoReport {
    /// The post-edit optimum (bit-identical to a cold re-run).
    pub solution: Solution,
    /// Search statistics of the re-run.
    pub stats: SearchStats,
    /// Warm-seeding outcome (candidates offered / evaluated / best value).
    pub warm: WarmStats,
    /// Vectors recovered from the checkpoint file (0 without one).
    pub checkpoint_vectors: usize,
    /// Pre-edit gates that survived the edit (reused assignments context).
    pub gates_carried: usize,
    /// Gates in the post-edit netlist.
    pub gates_total: usize,
}

impl EcoReport {
    /// Fraction of post-edit gates carried over from before the edit.
    #[must_use]
    pub fn carry_ratio(&self) -> f64 {
        if self.gates_total == 0 {
            return 0.0;
        }
        self.gates_carried as f64 / self.gates_total as f64
    }
}

impl<'a> Optimizer<'a> {
    /// Re-optimizes after a netlist edit, warm-seeded by the previous
    /// solution and (optionally) a checkpoint file from the pre-edit run.
    ///
    /// `self` must be built on the **post-edit** problem. `trace` is the
    /// edit's id mapping (used for reuse reporting); `prev` is the
    /// pre-edit solution, `checkpoint` a PR 5 checkpoint file whose
    /// per-task best vectors are mined as additional warm candidates
    /// (best-effort: an unreadable or foreign file contributes nothing).
    /// `shared_out` optionally exposes the live incumbent for
    /// time-to-quality instrumentation.
    ///
    /// The returned solution is **bit-identical** to a cold
    /// [`Optimizer::heuristic2_parallel`] on the same problem at any
    /// thread count — reuse affects speed, not the answer. Candidate
    /// vectors whose length no longer matches (the edit changed the
    /// primary-input count) are skipped silently.
    ///
    /// # Errors
    ///
    /// Returns an error on library lookup failure.
    pub fn rerun_after_edit(
        &self,
        exec: &ExecConfig,
        prev: Option<&Solution>,
        trace: &EditTrace,
        checkpoint: Option<&Path>,
        shared_out: Option<&SharedMinF64>,
    ) -> Result<EcoReport, OptError> {
        let _span = self.obs.span("core.eco.rerun");
        let mut warm_vectors: Vec<Vec<bool>> = Vec::new();
        if let Some(sol) = prev {
            warm_vectors.push(sol.vector.clone());
        }
        let mut checkpoint_vectors = 0usize;
        if let Some(path) = checkpoint {
            if let Ok(Some(loaded)) = checkpoint::load(path) {
                let mut push = |v: &Vec<bool>| {
                    if !warm_vectors.contains(v) {
                        warm_vectors.push(v.clone());
                        checkpoint_vectors += 1;
                    }
                };
                push(&loaded.meta.seed.vector);
                for task in loaded.tasks.values() {
                    if let Some(sol) = &task.solution {
                        push(&sol.vector);
                    }
                }
            }
        }
        let (solution, stats, warm) =
            self.heuristic2_parallel_warm(exec, &warm_vectors, shared_out)?;
        let gates_total = self.problem.netlist().num_gates();
        let gates_carried = trace.gates_carried().min(gates_total);
        self.obs.add("core.eco.runs", 1);
        self.obs
            .add("core.eco.warm_candidates", warm.candidates as u64);
        self.obs
            .add("core.eco.warm_evaluated", warm.evaluated as u64);
        self.obs
            .add("core.eco.checkpoint_vectors", checkpoint_vectors as u64);
        self.obs.add("core.eco.gates_carried", gates_carried as u64);
        self.obs.add("core.eco.gates_total", gates_total as u64);
        Ok(EcoReport {
            solution,
            stats,
            warm,
            checkpoint_vectors,
            gates_carried,
            gates_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svtox_cells::{Library, LibraryOptions};
    use svtox_netlist::generators::{random_dag, RandomDagSpec};
    use svtox_netlist::{EditScript, Netlist};
    use svtox_sta::TimingConfig;
    use svtox_tech::Technology;

    use crate::problem::{DelayPenalty, Mode, Problem};

    fn library() -> Library {
        Library::new(Technology::predictive_65nm(), LibraryOptions::default()).unwrap()
    }

    fn base() -> Netlist {
        random_dag(&RandomDagSpec::new("eco-small", 8, 4, 40, 6)).unwrap()
    }

    /// A small functional edit: add two gates, rewire a PO driver pin,
    /// retag one output.
    fn edit(netlist: &mut Netlist) -> EditTrace {
        let pi0 = netlist.net(netlist.inputs()[0]).name().to_string();
        let pi1 = netlist.net(netlist.inputs()[1]).name().to_string();
        let po0 = netlist.net(netlist.outputs()[0]).name().to_string();
        let script = EditScript::parse(&format!(
            "add eco_a = NAND({pi0}, {pi1})\nadd eco_b = NOT(eco_a)\nrewire {po0} 0 eco_b\n"
        ))
        .unwrap();
        script.apply(netlist).unwrap()
    }

    #[test]
    fn eco_rerun_is_bit_identical_to_cold_at_every_thread_count() {
        let lib = library();
        let pre = base();
        let problem = Problem::new(&pre, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let (prev, _) = opt
            .heuristic2_parallel(&ExecConfig::with_threads(2))
            .unwrap();

        let mut post = pre.clone();
        let trace = edit(&mut post);
        let post_problem = Problem::new(&post, &lib, TimingConfig::default()).unwrap();
        let post_opt = post_problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);

        let (cold, _) = post_opt
            .heuristic2_parallel(&ExecConfig::with_threads(1))
            .unwrap();
        for threads in [1usize, 2, 4] {
            let report = post_opt
                .rerun_after_edit(
                    &ExecConfig::with_threads(threads),
                    Some(&prev),
                    &trace,
                    None,
                    None,
                )
                .unwrap();
            assert!(
                report.solution.same_assignment(&cold),
                "threads={threads}: eco {} vs cold {}",
                report.solution,
                cold
            );
            assert_eq!(report.warm.candidates, 1);
            assert_eq!(report.warm.evaluated, 1);
            let warm_best = report.warm.best.unwrap();
            assert!(
                warm_best >= cold.leakage.value() - 1e-12,
                "warm value {warm_best} below the optimum"
            );
            assert_eq!(report.gates_total, post.num_gates());
            assert_eq!(report.gates_carried, pre.num_gates());
            assert!(report.carry_ratio() > 0.9);
        }
    }

    #[test]
    fn stale_vector_lengths_are_skipped() {
        let lib = library();
        let netlist = base();
        let problem = Problem::new(&netlist, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        // A "previous" solution with the wrong input count.
        let (mut prev, _) = opt.heuristic2_parallel(&ExecConfig::serial()).unwrap();
        prev.vector.pop();
        let trace = EditTrace {
            gate_map: Vec::new(),
            net_map: Vec::new(),
            added_gates: 0,
            removed_gates: 0,
            rewired_pins: 0,
            retagged_outputs: 0,
        };
        let report = opt
            .rerun_after_edit(&ExecConfig::serial(), Some(&prev), &trace, None, None)
            .unwrap();
        assert_eq!(report.warm.candidates, 1);
        assert_eq!(report.warm.evaluated, 0);
        assert_eq!(report.warm.best, None);
        let (cold, _) = opt.heuristic2_parallel(&ExecConfig::serial()).unwrap();
        assert!(report.solution.same_assignment(&cold));
    }

    #[test]
    fn checkpoint_vectors_feed_the_warm_seed() {
        use crate::checkpoint::CheckpointSpec;

        let lib = library();
        let pre = base();
        let problem = Problem::new(&pre, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let dir = std::env::temp_dir().join(format!("svtox-eco-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pre.ckpt");
        let exec = ExecConfig::with_threads(2);
        let prev = match opt.run(&exec, Some(&CheckpointSpec::fresh(&path))) {
            crate::outcome::RunOutcome::Complete { solution, .. } => solution,
            other => panic!("expected a complete run, got {other:?}"),
        };

        let mut post = pre.clone();
        let trace = edit(&mut post);
        let post_problem = Problem::new(&post, &lib, TimingConfig::default()).unwrap();
        let post_opt = post_problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let report = post_opt
            .rerun_after_edit(&exec, Some(&prev), &trace, Some(&path), None)
            .unwrap();
        // The checkpoint contributed at least the H1 seed vector (tasks
        // may or may not record distinct ones), and everything offered
        // with a matching length got evaluated.
        assert!(report.checkpoint_vectors >= 1);
        assert_eq!(report.warm.candidates, 1 + report.checkpoint_vectors);
        assert_eq!(report.warm.evaluated, report.warm.candidates);
        let (cold, _) = post_opt
            .heuristic2_parallel(&ExecConfig::with_threads(1))
            .unwrap();
        assert!(report.solution.same_assignment(&cold));
        std::fs::remove_dir_all(&dir).ok();
    }
}
