//! Strategy portfolio: race H1, H2, exact and randomized restarts.
//!
//! No single engine dominates across circuits — the exact branch and
//! bound wins small instances outright, Heuristic 2 under different
//! branch orders wins different mid-size instances, and randomized
//! restarts occasionally beat both. [`Optimizer::run_portfolio`] races
//! them all over the svtox-exec pool and keeps the first winner.
//!
//! # Round-based incumbent sharing
//!
//! Members share one incumbent cell ([`SharedMinF64`]), but *when* they
//! read it is the crux of the determinism contract. The portfolio runs in
//! **rounds**: each live member contributes exactly one *unit* of work
//! per round (one prefix subtree for the H2/exact members, one random
//! vector for the restarts member), and every unit of round `r` prunes
//! against the **frozen bound** `B_r` — the incumbent as of the previous
//! round's barrier. Improvements fold into the cell only *at* the
//! barrier, in fixed member order. A unit is therefore a pure function of
//! `(member state, B_r)`: no mid-round cross-member reads means no
//! dependence on worker timing, so the winning strategy, the final cost
//! bits, and every member's node/leaf/incumbent-update counts are
//! bit-identical for any thread count — and a killed run resumes
//! member-by-member to the same answer, because replayed units re-enter
//! the fold at their original round positions, reconstructing the exact
//! `B_r` sequence.
//!
//! Sharing still pays: a member's round-`r` improvement tightens every
//! other member's round-`r+1` bound, one barrier later than a live read
//! would, which costs at most one unit of stale pruning per member.
//!
//! # Anytime (deadline) mode
//!
//! The frozen-round contract above holds whenever the budget has **no
//! wall-clock deadline** — cancellation and fault injection preserve it,
//! because an interrupted unit is simply re-run in full on resume. A
//! budget *with* a deadline can stop a unit mid-search, so the result
//! already depends on timing and machine speed; paying the frozen-bound
//! tax there buys nothing. Deadline runs therefore switch to **anytime
//! mode**: every remaining unit is scheduled in one round, greedy and
//! restart units prune against (and update) the incumbent cell *live*,
//! and the deadline rather than the barrier ends the round. Exact units
//! keep the frozen round bound even in anytime mode, so a
//! proven-optimality claim never rests on a bound tightened by a partial
//! result that is neither folded nor recorded. The deterministic
//! accounting (member bests, provenance, incumbent updates) still happens
//! only at the barrier, exactly as in frozen mode.
//!
//! # Winner and optimality
//!
//! The winner is the first member in fixed declaration order whose final
//! best cost bit-equals the portfolio best (Heuristic 1 seeds the
//! incumbent and wins when nobody improves on it). Only an exact member
//! exhausting all of its units proves global optimality — its leaf search
//! covers the whole gate-choice space, which strictly contains the greedy
//! and restart leaves — and doing so cancels the remaining members
//! through their per-member budgets (children of the caller's budget, so
//! a deadline or Ctrl-C still reaches everyone).

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

use svtox_exec::rng::{derive_seed, Xoshiro256pp};
use svtox_exec::{run_pool, Budget, CancelToken, ExecConfig, ExecError, SearchStats, SharedMinF64};
use svtox_fault::Site as FaultSite;
use svtox_sta::Sta;

use crate::checkpoint::{self, CheckpointSpec, CheckpointWriter, TaskRecord};
use crate::error::OptError;
use crate::outcome::{DegradeReason, RunOutcome};
use crate::solution::Solution;

use super::parallel::{LeafKind, WorkerCtx};
use super::{BoundTracker, Optimizer};

/// Primary-input branching order of a portfolio member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOrder {
    /// Largest transitive fanout first (the serial engine's default).
    InfluenceDescending,
    /// Netlist declaration order.
    Natural,
    /// Smallest transitive fanout first — a deliberately contrarian
    /// order that wins when the influential inputs are better decided
    /// late.
    InfluenceAscending,
}

/// One racing strategy of the portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The Heuristic 1 descent that seeds the incumbent.
    Heuristic1,
    /// Branch-and-bound state search with greedy gate trees.
    Heuristic2(BranchOrder),
    /// Exhaustive two-tree branch and bound (small circuits only).
    Exact(BranchOrder),
    /// Seeded randomized restart vectors with greedy gate trees.
    Restarts,
}

impl Strategy {
    /// Stable identifier used in reports, JSON, and checkpoint metadata.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Strategy::Heuristic1 => "h1",
            Strategy::Heuristic2(BranchOrder::InfluenceDescending) => "h2-influence",
            Strategy::Heuristic2(BranchOrder::Natural) => "h2-natural",
            Strategy::Heuristic2(BranchOrder::InfluenceAscending) => "h2-reverse",
            Strategy::Exact(BranchOrder::InfluenceDescending) => "exact-influence",
            Strategy::Exact(BranchOrder::Natural) => "exact-natural",
            Strategy::Exact(BranchOrder::InfluenceAscending) => "exact-reverse",
            Strategy::Restarts => "restarts",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// Portfolio tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Random restart vectors the restarts member evaluates.
    pub restarts: usize,
    /// Input-count ceiling for including the exact members.
    pub exact_max_inputs: usize,
    /// Base seed of the restart vectors (each restart derives its own
    /// stream, so the set is identical for any thread count).
    pub seed: u64,
    /// Prefix split depth of the H2/exact members: each gets `2^depth`
    /// subtree units. Fixed — independent of the thread count — so
    /// checkpoints resume across machines.
    pub split_depth: usize,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        Self {
            restarts: 24,
            exact_max_inputs: 12,
            seed: 42,
            split_depth: 4,
        }
    }
}

/// How a member's run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberStatus {
    /// Every unit was exhaustively explored.
    Complete,
    /// Stopped by the portfolio after another member proved optimality.
    Cancelled,
    /// Stopped mid-unit (deadline, external cancel, or injected kill);
    /// its checkpoint resumes the remaining units.
    Preempted,
}

impl fmt::Display for MemberStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemberStatus::Complete => "complete",
            MemberStatus::Cancelled => "cancelled",
            MemberStatus::Preempted => "preempted",
        })
    }
}

/// Per-member accounting folded into the [`PortfolioOutcome`].
#[derive(Debug, Clone)]
pub struct MemberReport {
    /// Which strategy this member ran.
    pub strategy: Strategy,
    /// How the member ended.
    pub status: MemberStatus,
    /// The member's own best leakage (absent if it never beat the bound
    /// it was given).
    pub best_cost: Option<f64>,
    /// Units fully explored (including replayed ones).
    pub units_done: usize,
    /// Units the member was assigned in total.
    pub units_total: usize,
    /// Units replayed from a checkpoint instead of recomputed.
    pub resumed_units: usize,
    /// State-tree nodes this member expanded.
    pub nodes: u64,
    /// Leaves this member evaluated.
    pub leaves: u64,
    /// Barrier folds where this member improved the portfolio incumbent.
    pub incumbent_updates: u64,
}

/// One improvement of the portfolio incumbent.
#[derive(Debug, Clone, Copy)]
pub struct ProvenanceEntry {
    /// The member that produced the improvement.
    pub strategy: Strategy,
    /// The round at whose barrier it folded in.
    pub round: usize,
    /// The improved leakage.
    pub cost: f64,
}

/// The typed result of a portfolio run.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The first member (in declaration order) whose best matches the
    /// portfolio best bit-for-bit.
    pub winner: Strategy,
    /// The portfolio's best solution.
    pub best: Solution,
    /// Whether an exact member exhausted its search, proving `best`
    /// globally optimal.
    pub proven_optimal: bool,
    /// Barrier rounds executed.
    pub rounds: usize,
    /// Per-member reports, in declaration order.
    pub members: Vec<MemberReport>,
    /// Every incumbent improvement, oldest first (entry 0 is the H1
    /// seed).
    pub provenance: Vec<ProvenanceEntry>,
    /// Aggregated engine statistics over all rounds.
    pub stats: SearchStats,
    /// Why the run degraded, if it did.
    pub reason: Option<DegradeReason>,
}

impl PortfolioOutcome {
    /// `"complete"` or `"degraded"`, mirroring [`RunOutcome::status`].
    #[must_use]
    pub fn status(&self) -> &'static str {
        if self.reason.is_some() {
            "degraded"
        } else {
            "complete"
        }
    }

    /// Collapses into the engine-wide [`RunOutcome`] shape (the winner
    /// and member details are portfolio-specific and dropped).
    #[must_use]
    pub fn into_run_outcome(self) -> RunOutcome {
        match self.reason {
            Some(reason) => RunOutcome::Degraded {
                reason,
                best: self.best,
                stats: self.stats,
            },
            None => RunOutcome::Complete {
                solution: self.best,
                stats: self.stats,
            },
        }
    }
}

impl fmt::Display for PortfolioOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "winner {} after {} rounds ({} members",
            self.winner,
            self.rounds,
            self.members.len()
        )?;
        if self.proven_optimal {
            write!(f, ", proven optimal")?;
        }
        write!(f, ", {})", self.status())
    }
}

/// One unit's barrier-fold entry:
/// `(member, unit, solution, exhausted, nodes, leaves, replayed)`.
type UnitResult = (usize, usize, Option<Solution>, bool, u64, u64, bool);

/// What one unit reports back through the pool.
struct UnitReturn {
    solution: Option<Solution>,
    exhausted: bool,
    nodes: u64,
    leaves: u64,
}

/// Immutable description of one round task, safe to share with workers.
struct TaskDesc {
    member: usize,
    unit: usize,
    kind: TaskKind,
    budget: Budget,
}

enum TaskKind {
    Subtree {
        order: Vec<usize>,
        k: usize,
        leaf: LeafKind,
    },
    Restart {
        seed: u64,
    },
}

/// Mutable per-member bookkeeping of the driver loop.
struct Member {
    strategy: Strategy,
    kind: MemberKind,
    units_total: usize,
    budget: Budget,
    recorded: BTreeMap<usize, TaskRecord>,
    writer: Option<CheckpointWriter>,
    units_done: usize,
    resumed_units: usize,
    best_cost: Option<f64>,
    nodes: u64,
    leaves: u64,
    incumbent_updates: u64,
    preempted: bool,
    cancelled: bool,
}

enum MemberKind {
    Seed,
    Subtree {
        order: Vec<usize>,
        k: usize,
        leaf: LeafKind,
    },
    Restarts,
}

impl Member {
    /// Whether the member still has a unit to contribute this round.
    fn runnable(&self) -> bool {
        !self.preempted && !self.cancelled && self.units_done < self.units_total
    }

    fn status(&self) -> MemberStatus {
        if self.units_done == self.units_total {
            MemberStatus::Complete
        } else if self.cancelled {
            MemberStatus::Cancelled
        } else {
            MemberStatus::Preempted
        }
    }

    fn report(&self) -> MemberReport {
        MemberReport {
            strategy: self.strategy,
            status: self.status(),
            best_cost: self.best_cost,
            units_done: self.units_done,
            units_total: self.units_total,
            resumed_units: self.resumed_units,
            nodes: self.nodes,
            leaves: self.leaves,
            incumbent_updates: self.incumbent_updates,
        }
    }
}

impl<'a> Optimizer<'a> {
    /// Branching order for a portfolio member (stable sorts, so the
    /// order — and with it the whole member trajectory — is reproducible).
    fn branch_order(&self, order: BranchOrder) -> Vec<usize> {
        let n = self.problem.netlist().num_inputs();
        let mut inputs: Vec<usize> = (0..n).collect();
        match order {
            BranchOrder::InfluenceDescending => {
                inputs.sort_by_key(|&i| std::cmp::Reverse(self.problem.tfo(i).len()));
            }
            BranchOrder::Natural => {}
            BranchOrder::InfluenceAscending => {
                inputs.sort_by_key(|&i| self.problem.tfo(i).len());
            }
        }
        inputs
    }

    /// Races the full strategy portfolio under `budget` and folds the
    /// members into a typed [`PortfolioOutcome`].
    ///
    /// With a [`CheckpointSpec`], each member appends its exhausted units
    /// to its own file (`<path>.<slug>`, tagged with the member's engine
    /// slug) and a resumed run replays them at their original round
    /// positions — bit-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`OptError`] for library failures, unusable checkpoint
    /// files, or an engine error that left no incumbent. Shortfalls that
    /// leave an incumbent (deadline, cancel, member kills) degrade via
    /// [`PortfolioOutcome::reason`] instead.
    pub fn run_portfolio(
        &self,
        exec: &ExecConfig,
        budget: &Budget,
        config: &PortfolioConfig,
        checkpoint: Option<&CheckpointSpec>,
    ) -> Result<PortfolioOutcome, OptError> {
        let start = Instant::now();
        let _span = self.obs.span("core.portfolio.run");
        let netlist = self.problem.netlist();
        let n = netlist.num_inputs();
        let k = config.split_depth.min(n);

        // Heuristic 1 is deterministic and cheap, so resume re-derives
        // the seed instead of trusting the file.
        let seed_sol = self.heuristic1()?;
        let seed_leak = seed_sol.leakage.value();
        let delay_budget = self.budget();

        // Fixed declaration order — winner ties break towards the front.
        let mut strategies = vec![
            (Strategy::Heuristic1, MemberKind::Seed, 0usize),
            (
                Strategy::Heuristic2(BranchOrder::InfluenceDescending),
                MemberKind::Subtree {
                    order: self.branch_order(BranchOrder::InfluenceDescending),
                    k,
                    leaf: LeafKind::Greedy,
                },
                1usize << k,
            ),
            (
                Strategy::Heuristic2(BranchOrder::Natural),
                MemberKind::Subtree {
                    order: self.branch_order(BranchOrder::Natural),
                    k,
                    leaf: LeafKind::Greedy,
                },
                1usize << k,
            ),
            (
                Strategy::Heuristic2(BranchOrder::InfluenceAscending),
                MemberKind::Subtree {
                    order: self.branch_order(BranchOrder::InfluenceAscending),
                    k,
                    leaf: LeafKind::Greedy,
                },
                1usize << k,
            ),
        ];
        if n <= config.exact_max_inputs {
            for order in [BranchOrder::InfluenceDescending, BranchOrder::Natural] {
                strategies.push((
                    Strategy::Exact(order),
                    MemberKind::Subtree {
                        order: self.branch_order(order),
                        k,
                        leaf: LeafKind::Exact,
                    },
                    1usize << k,
                ));
            }
        }
        if config.restarts > 0 {
            strategies.push((Strategy::Restarts, MemberKind::Restarts, config.restarts));
        }

        let mut members = Vec::with_capacity(strategies.len());
        for (strategy, kind, units_total) in strategies {
            let member_k = match &kind {
                MemberKind::Subtree { k, .. } => *k,
                _ => 0,
            };
            let (recorded, writer) =
                self.member_checkpoint(checkpoint, strategy, member_k, units_total, &seed_sol)?;
            members.push(Member {
                strategy,
                kind,
                units_total,
                budget: budget.child(CancelToken::new()),
                recorded,
                writer,
                units_done: 0,
                resumed_units: 0,
                best_cost: if matches!(strategy, Strategy::Heuristic1) {
                    Some(seed_leak)
                } else {
                    None
                },
                nodes: 0,
                leaves: 0,
                incumbent_updates: 0,
                preempted: false,
                cancelled: false,
            });
        }

        // A deadline marks the run as *anytime*: it can stop mid-unit,
        // so its result already depends on timing and machine speed. In
        // that mode the frozen-round contract would only cost pruning
        // depth — a 2^k-leaf unit rarely exhausts before the deadline,
        // leaving every member to search with the seed bound forever. So
        // anytime runs trade the (already unattainable) bit-identity for
        // quality: greedy units share the incumbent cell live and every
        // remaining unit is scheduled at once, letting the deadline
        // rather than the barrier end the round.
        let live = budget.has_deadline();
        // The portfolio incumbent. Without a deadline it is updated only
        // at round barriers, so every unit of a round prunes against the
        // same frozen bound.
        let cell = SharedMinF64::new(seed_leak);
        let mut best = seed_sol.clone();
        // Degraded-run fallback attribution: a mid-unit (non-exhausted)
        // improvement folds into `best` but not into any member's
        // deterministic accounting.
        let mut partial_winner: Option<Strategy> = None;
        let mut provenance = vec![ProvenanceEntry {
            strategy: Strategy::Heuristic1,
            round: 0,
            cost: seed_leak,
        }];
        let mut total_stats = SearchStats {
            completed: true,
            ..SearchStats::default()
        };
        let mut rounds = 0usize;
        let mut live_units = 0u64;
        let mut proven_optimal = false;
        let mut worker_loss: Option<(usize, String)> = None;
        let mut task_failures: (usize, Option<String>) = (0, None);

        while members.iter().any(Member::runnable) {
            if budget.expired() {
                for m in members.iter_mut().filter(|m| m.runnable()) {
                    m.preempted = true;
                }
                break;
            }
            let bound = cell.get();
            let mut results: Vec<UnitResult> = Vec::new();
            let mut tasks: Vec<TaskDesc> = Vec::new();
            for (mi, m) in members.iter_mut().enumerate() {
                if !m.runnable() {
                    continue;
                }
                // A frozen round advances one unit per member; an
                // anytime round schedules every remaining unit at once.
                let span_end = if live {
                    m.units_total
                } else {
                    m.units_done + 1
                };
                for unit in m.units_done..span_end {
                    if let Some(rec) = m.recorded.get(&unit) {
                        results.push((mi, unit, rec.solution.clone(), true, 0, rec.leaves, true));
                        continue;
                    }
                    let kind = match &m.kind {
                        MemberKind::Subtree { order, k, leaf } => TaskKind::Subtree {
                            order: order.clone(),
                            k: *k,
                            leaf: *leaf,
                        },
                        MemberKind::Restarts => TaskKind::Restart {
                            seed: derive_seed(config.seed, unit as u64),
                        },
                        MemberKind::Seed => unreachable!("seed member has no units"),
                    };
                    tasks.push(TaskDesc {
                        member: mi,
                        unit,
                        kind,
                        budget: m.budget.clone(),
                    });
                }
            }
            if live {
                // Interleave members so the first workers cover one unit
                // of each strategy instead of draining one member's
                // queue before the deadline lands. Restart units are
                // near-free (one leaf evaluation each) and feed the live
                // incumbent, so the whole restart block runs right after
                // the first rank of dives — on large circuits a dive
                // never finishes, and restarts queued behind a second
                // dive rank would never run at all.
                tasks.sort_by_key(|t| {
                    let rank = match &t.kind {
                        TaskKind::Subtree { .. } if t.unit == 0 => 0,
                        TaskKind::Restart { .. } => 1,
                        TaskKind::Subtree { .. } => 2,
                    };
                    (rank, t.unit, t.member)
                });
            }

            if !tasks.is_empty() {
                live_units += tasks.len() as u64;
                let run = run_pool(
                    exec,
                    tasks.len(),
                    budget,
                    self.obs,
                    self.fault,
                    |_worker| WorkerCtx {
                        sta: Sta::new(netlist, self.problem.library(), self.problem.timing())
                            .expect("library already validated by heuristic 1"),
                        tracker: BoundTracker::new(self.problem, self.mode),
                        vector: vec![false; n],
                    },
                    |ctx, t, ws| {
                        let shared = live.then_some(&cell);
                        Some(self.run_unit(ctx, &tasks[t], bound, shared, delay_budget, ws))
                    },
                );
                total_stats.absorb(&run.stats);
                for failure in &run.failures {
                    let mi = tasks[failure.task].member;
                    members[mi].preempted = true;
                    task_failures.0 += 1;
                    if task_failures.1.is_none() {
                        task_failures.1 = Some(failure.message.clone());
                    }
                }
                if let Some(error) = run.error {
                    match error {
                        ExecError::WorkerPanic { worker, message } => {
                            worker_loss = Some((worker, message));
                        }
                        other => return Err(OptError::Exec(other)),
                    }
                }
                for (t, slot) in run.results.into_iter().enumerate() {
                    let desc = &tasks[t];
                    match slot {
                        Some(unit) => results.push((
                            desc.member,
                            desc.unit,
                            unit.solution,
                            unit.exhausted,
                            unit.nodes,
                            unit.leaves,
                            false,
                        )),
                        // Skipped by budget expiry (or lost with a dead
                        // worker): the unit never ran to exhaustion.
                        None => {
                            members[desc.member].preempted = true;
                        }
                    }
                }
            }
            drop(tasks);

            // Barrier fold, in fixed (member, unit) order.
            results.sort_by_key(|r| (r.0, r.1));
            for (mi, unit, solution, exhausted, nodes, leaves, replayed) in results {
                let m = &mut members[mi];
                m.nodes += nodes;
                m.leaves += leaves;
                if exhausted {
                    if replayed {
                        m.resumed_units += 1;
                    } else if let Some(w) = &m.writer {
                        w.record_task(unit, leaves, solution.as_ref());
                    }
                    m.units_done += 1;
                } else {
                    m.preempted = true;
                }
                let Some(sol) = solution else { continue };
                let cost = sol.leakage.value();
                if exhausted {
                    if m.best_cost.is_none_or(|b| cost < b) {
                        m.best_cost = Some(cost);
                    }
                    if cost < best.leakage.value() {
                        cell.update_min(cost);
                        m.incumbent_updates += 1;
                        provenance.push(ProvenanceEntry {
                            strategy: m.strategy,
                            round: rounds,
                            cost,
                        });
                        best = sol;
                    }
                } else if cost < best.leakage.value() {
                    // Anytime value from an interrupted unit: keep the
                    // solution but leave the deterministic accounting
                    // (cell, member best, provenance) untouched — resume
                    // re-runs the unit in full.
                    partial_winner = Some(m.strategy);
                    best = sol;
                }
            }
            rounds += 1;

            if members
                .iter()
                .any(|m| matches!(m.strategy, Strategy::Exact(_)) && m.units_done == m.units_total)
            {
                proven_optimal = true;
                for m in members.iter_mut().filter(|m| m.runnable()) {
                    m.cancelled = true;
                    m.budget.cancel();
                }
            }
            if worker_loss.is_some() {
                for m in members.iter_mut().filter(|m| m.runnable()) {
                    m.preempted = true;
                }
                break;
            }
        }

        let reason = if let Some((worker, message)) = worker_loss {
            Some(DegradeReason::WorkerLoss { worker, message })
        } else if task_failures.0 > 0 {
            Some(DegradeReason::TasksFailed {
                failed: task_failures.0,
                first: task_failures.1.unwrap_or_default(),
            })
        } else if members.iter().any(|m| m.preempted) {
            if budget.deadline_passed() {
                Some(DegradeReason::DeadlineExpired)
            } else {
                Some(DegradeReason::Cancelled)
            }
        } else {
            None
        };

        let best_bits = best.leakage.value().to_bits();
        let winner = members
            .iter()
            .find(|m| m.best_cost.is_some_and(|c| c.to_bits() == best_bits))
            .map(|m| m.strategy)
            .or(partial_winner)
            .unwrap_or(Strategy::Heuristic1);

        best.runtime = start.elapsed();
        best.leaves_explored =
            seed_sol.leaves_explored + members.iter().map(|m| m.leaves).sum::<u64>() as usize;
        total_stats.completed = reason.is_none();
        total_stats.wall = start.elapsed();

        let members: Vec<MemberReport> = members.iter().map(Member::report).collect();
        let complete = members
            .iter()
            .filter(|m| m.status == MemberStatus::Complete)
            .count() as u64;
        let cancelled = members
            .iter()
            .filter(|m| m.status == MemberStatus::Cancelled)
            .count() as u64;
        let preempted = members
            .iter()
            .filter(|m| m.status == MemberStatus::Preempted)
            .count() as u64;
        let resumed: u64 = members.iter().map(|m| m.resumed_units as u64).sum();
        self.obs.add("core.portfolio.rounds", rounds as u64);
        self.obs.add("core.portfolio.units", live_units);
        self.obs.add("core.portfolio.units_resumed", resumed);
        self.obs.add(
            "core.portfolio.incumbent_updates",
            (provenance.len() - 1) as u64,
        );
        self.obs.add("core.portfolio.members_complete", complete);
        self.obs.add("core.portfolio.members_cancelled", cancelled);
        self.obs.add("core.portfolio.members_preempted", preempted);

        Ok(PortfolioOutcome {
            winner,
            best,
            proven_optimal,
            rounds,
            members,
            provenance,
            stats: total_stats,
            reason,
        })
    }

    /// Executes one live unit (worker side).
    fn run_unit(
        &self,
        ctx: &mut WorkerCtx<'a, 'a>,
        desc: &TaskDesc,
        bound: f64,
        live: Option<&SharedMinF64>,
        delay_budget: svtox_tech::Time,
        ws: &mut svtox_exec::WorkerStats,
    ) -> UnitReturn {
        let nodes0 = ws.nodes_expanded;
        let leaves0 = ws.leaves_evaluated;
        if desc.budget.expired() {
            return UnitReturn {
                solution: None,
                exhausted: false,
                nodes: 0,
                leaves: 0,
            };
        }
        let solution = match &desc.kind {
            TaskKind::Subtree { order, k, leaf } => {
                // Reproducible rounds prune against a private cell frozen
                // at the round bound: the unit prunes exactly as the
                // serial rule dictates, immune to mid-round cross-member
                // noise. Anytime runs share the real incumbent instead —
                // except exact units, whose proven-optimality claim must
                // never rest on a bound tightened by a partial result
                // that is neither folded nor recorded.
                let frozen = SharedMinF64::new(bound);
                let (cell, bound) = match live {
                    Some(cell) if matches!(leaf, LeafKind::Greedy) => (cell, cell.get()),
                    _ => (&frozen, bound),
                };
                self.search_subtree(
                    ctx,
                    desc.unit,
                    *k,
                    order,
                    &desc.budget,
                    cell,
                    bound,
                    delay_budget,
                    *leaf,
                    ws,
                )
            }
            TaskKind::Restart { seed } => {
                // Anytime runs judge (and feed) the live incumbent; a
                // random vector that only beats a stale round bound is
                // not worth reporting.
                let bound = live.map_or(bound, SharedMinF64::get);
                let start = Instant::now();
                let mut rng = Xoshiro256pp::seed_from_u64(*seed);
                for slot in ctx.vector.iter_mut() {
                    *slot = rng.next_u64() & 1 == 1;
                }
                ws.leaves_evaluated += 1;
                let sol = self.evaluate_leaf(
                    &ctx.vector,
                    &mut ctx.sta,
                    start,
                    ws.leaves_evaluated as usize,
                );
                if self.fault.fires(FaultSite::CoreLeaf) {
                    desc.budget.cancel();
                }
                if let Some(cell) = live {
                    cell.update_min(sol.leakage.value());
                }
                (sol.leakage.value() < bound).then_some(sol)
            }
        };
        UnitReturn {
            solution,
            exhausted: !desc.budget.expired(),
            nodes: ws.nodes_expanded - nodes0,
            leaves: ws.leaves_evaluated - leaves0,
        }
    }

    /// Loads or creates one member's checkpoint state.
    fn member_checkpoint(
        &self,
        spec: Option<&CheckpointSpec>,
        strategy: Strategy,
        k: usize,
        units_total: usize,
        seed: &Solution,
    ) -> Result<(BTreeMap<usize, TaskRecord>, Option<CheckpointWriter>), OptError> {
        let Some(spec) = spec else {
            return Ok((BTreeMap::new(), None));
        };
        if units_total == 0 {
            // The seed member has nothing to record.
            return Ok((BTreeMap::new(), None));
        }
        let slug = strategy.slug();
        let path = PathBuf::from(format!("{}.{slug}", spec.path.display()));
        let member_spec = CheckpointSpec {
            path: path.clone(),
            resume: spec.resume,
        };
        let loaded = if spec.resume {
            checkpoint::load(&path)?
        } else {
            None
        };
        match loaded {
            Some(cp) => {
                self.validate_meta(&cp.meta, k, &member_spec)?;
                if cp.meta.engine.as_deref() != Some(slug) {
                    return Err(OptError::Checkpoint(format!(
                        "{}: recorded engine {:?} does not match member \"{slug}\"",
                        path.display(),
                        cp.meta.engine
                    )));
                }
                let writer = CheckpointWriter::append(&path, self.fault)?;
                Ok((cp.tasks, Some(writer)))
            }
            None => {
                let mut meta = self.meta(k, seed);
                meta.engine = Some(slug.to_string());
                let writer = CheckpointWriter::create(&path, &meta, self.fault)?;
                Ok((BTreeMap::new(), Some(writer)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svtox_cells::{Library, LibraryOptions};
    use svtox_exec::ExecConfig;
    use svtox_fault::{Fault, FaultPlan, Site, Trigger};
    use svtox_netlist::generators::{random_dag, RandomDagSpec};
    use svtox_netlist::Netlist;
    use svtox_sta::TimingConfig;
    use svtox_tech::Technology;

    use crate::problem::{DelayPenalty, Mode, Problem};

    /// Small on purpose: the exact members run a full gate-option branch
    /// and bound per leaf, so circuit size multiplies into every test.
    fn small() -> (Netlist, Library) {
        let spec = RandomDagSpec::new("portfolio-small", 6, 3, 16, 4);
        (
            random_dag(&spec).unwrap(),
            Library::new(Technology::predictive_65nm(), LibraryOptions::default()).unwrap(),
        )
    }

    /// Tinier still, for the tests that include the exact members: their
    /// per-leaf gate-option branch and bound dominates everything.
    fn tiny() -> (Netlist, Library) {
        let spec = RandomDagSpec::new("portfolio-tiny", 5, 3, 10, 4);
        (
            random_dag(&spec).unwrap(),
            Library::new(Technology::predictive_65nm(), LibraryOptions::default()).unwrap(),
        )
    }

    /// A config without the exact members, for tests that only need the
    /// cheap strategies (greedy leaves evaluate in microseconds).
    fn greedy_config() -> PortfolioConfig {
        PortfolioConfig {
            restarts: 12,
            exact_max_inputs: 0,
            ..PortfolioConfig::default()
        }
    }

    fn temp_base(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "svtox-portfolio-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    fn remove_member_files(base: &std::path::Path) {
        for slug in [
            "h2-influence",
            "h2-natural",
            "h2-reverse",
            "exact-influence",
            "exact-natural",
            "restarts",
        ] {
            std::fs::remove_file(format!("{}.{slug}", base.display())).ok();
        }
    }

    #[test]
    fn portfolio_is_bit_identical_across_thread_counts() {
        let (n, lib) = small();
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let config = greedy_config();
        let run = |threads: usize| {
            opt.run_portfolio(
                &ExecConfig::with_threads(threads),
                &Budget::unlimited(),
                &config,
                None,
            )
            .expect("portfolio runs")
        };
        let one = run(1);
        assert!(one.reason.is_none(), "unbudgeted run completes");
        for threads in [2, 4] {
            let other = run(threads);
            assert_eq!(other.winner, one.winner, "winner at {threads} threads");
            assert_eq!(
                other.best.leakage.value().to_bits(),
                one.best.leakage.value().to_bits()
            );
            assert!(other.best.same_assignment(&one.best));
            assert_eq!(other.rounds, one.rounds);
            for (a, b) in one.members.iter().zip(&other.members) {
                assert_eq!(a.strategy, b.strategy);
                assert_eq!(a.incumbent_updates, b.incumbent_updates, "{}", a.strategy);
                assert_eq!(a.nodes, b.nodes, "{}", a.strategy);
                assert_eq!(a.leaves, b.leaves, "{}", a.strategy);
                assert_eq!(a.units_done, b.units_done, "{}", a.strategy);
            }
        }
    }

    #[test]
    fn exact_completion_proves_optimality_and_cancels_losers() {
        let (n, lib) = tiny();
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        // More restart units than prefix units: the exact members finish
        // first and the restarts member must be cancelled, not completed.
        let config = PortfolioConfig {
            restarts: 40,
            ..PortfolioConfig::default()
        };
        let outcome = opt
            .run_portfolio(
                &ExecConfig::with_threads(2),
                &Budget::unlimited(),
                &config,
                None,
            )
            .unwrap();
        assert!(
            outcome.proven_optimal,
            "5 inputs gates the exact members in"
        );
        assert!(outcome.reason.is_none(), "cancelled losers do not degrade");
        let restarts = outcome
            .members
            .iter()
            .find(|m| m.strategy == Strategy::Restarts)
            .expect("restarts member present");
        assert_eq!(restarts.status, MemberStatus::Cancelled);
        assert!(restarts.units_done < restarts.units_total, "stopped early");
        // The proven optimum is at least as good as the serial exact
        // search's answer (identical gate-choice space).
        let exact = opt.exact(12).unwrap();
        assert_eq!(
            outcome.best.leakage.value().to_bits(),
            exact.leakage.value().to_bits()
        );
    }

    #[test]
    fn portfolio_beats_or_matches_every_individual_strategy() {
        let (n, lib) = tiny();
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let outcome = opt
            .run_portfolio(
                &ExecConfig::serial(),
                &Budget::unlimited(),
                &PortfolioConfig::default(),
                None,
            )
            .unwrap();
        let portfolio = outcome.best.leakage.value();
        let h1 = opt.heuristic1().unwrap().leakage.value();
        let h2 = opt
            .heuristic2(std::time::Duration::from_secs(10))
            .unwrap()
            .leakage
            .value();
        let exact = opt.exact(12).unwrap().leakage.value();
        assert!(portfolio <= h1 + 1e-15);
        assert!(portfolio <= h2 + 1e-15);
        assert!(portfolio <= exact + 1e-15);
        outcome.best.verify(&problem).unwrap();
    }

    #[test]
    fn kill_mid_run_then_resume_is_bit_identical() {
        let (n, lib) = small();
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let exec = ExecConfig::with_threads(1);
        let config = greedy_config();
        let reference = opt
            .run_portfolio(&exec, &Budget::unlimited(), &config, None)
            .unwrap();

        let base = temp_base("kill-resume");
        let plan = FaultPlan::new(13).with_rule(Site::CoreLeaf, Trigger::Nth(10));
        let fault = Fault::new(&plan);
        let killed = opt
            .with_fault(&fault)
            .run_portfolio(
                &exec,
                &Budget::unlimited(),
                &config,
                Some(&CheckpointSpec::fresh(&base)),
            )
            .unwrap();
        assert!(
            killed.reason.is_some(),
            "the injected kill preempts a member"
        );
        assert!(killed
            .members
            .iter()
            .any(|m| m.status == MemberStatus::Preempted));

        let resumed = opt
            .run_portfolio(
                &exec,
                &Budget::unlimited(),
                &config,
                Some(&CheckpointSpec::resume(&base)),
            )
            .unwrap();
        assert!(resumed.reason.is_none(), "resume completes");
        assert!(resumed.members.iter().any(|m| m.resumed_units > 0));
        assert_eq!(resumed.winner, reference.winner);
        assert_eq!(
            resumed.best.leakage.value().to_bits(),
            reference.best.leakage.value().to_bits()
        );
        assert!(resumed.best.same_assignment(&reference.best));
        remove_member_files(&base);
    }

    #[test]
    fn foreign_member_checkpoint_is_a_typed_failure() {
        let (n, lib) = small();
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let exec = ExecConfig::serial();
        let config = greedy_config();
        let base = temp_base("foreign");
        opt.run_portfolio(
            &exec,
            &Budget::unlimited(),
            &config,
            Some(&CheckpointSpec::fresh(&base)),
        )
        .unwrap();
        // Swap two members' files: the engine tag must reject the mix-up.
        let a = format!("{}.h2-influence", base.display());
        let b = format!("{}.h2-natural", base.display());
        let tmp = format!("{}.swap", base.display());
        std::fs::rename(&a, &tmp).unwrap();
        std::fs::rename(&b, &a).unwrap();
        std::fs::rename(&tmp, &b).unwrap();
        let err = opt
            .run_portfolio(
                &exec,
                &Budget::unlimited(),
                &config,
                Some(&CheckpointSpec::resume(&base)),
            )
            .expect_err("swapped files must fail");
        assert!(err.to_string().contains("engine"), "got {err}");
        remove_member_files(&base);
    }

    #[test]
    fn expired_budget_degrades_but_keeps_the_seed() {
        let (n, lib) = small();
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let outcome = opt
            .run_portfolio(
                &ExecConfig::with_threads(2),
                &Budget::with_duration(std::time::Duration::ZERO),
                &PortfolioConfig::default(),
                None,
            )
            .unwrap();
        assert_eq!(outcome.reason, Some(DegradeReason::DeadlineExpired));
        assert_eq!(outcome.winner, Strategy::Heuristic1);
        assert!(outcome.best.same_assignment(&opt.heuristic1().unwrap()));
        let run = outcome.into_run_outcome();
        assert_eq!(run.status(), "degraded");
    }
}
