//! The production entry point: fault-tolerant, checkpointed search.
//!
//! [`Optimizer::run`] wraps the root-split parallel search of
//! [`super::parallel`] in the degradation contract of
//! [`crate::outcome::RunOutcome`]:
//!
//! * the execution engine runs with the optimizer's fault handle and
//!   retry policy, so injected (or real) task panics retry with rebuilt
//!   worker state and dead workers respawn — see `svtox_exec::run_pool`;
//! * any shortfall that still leaves an incumbent (deadline, cancel,
//!   exhausted retry/respawn budgets) degrades instead of erroring,
//!   carrying the best solution found and the reason;
//! * with a [`CheckpointSpec`], every exhaustively-explored prefix
//!   subtree is appended to a JSONL file as it finishes, and a resumed
//!   run replays those records instead of recomputing them — the final
//!   solution is bit-identical to an uninterrupted run (same assignment
//!   for any thread count; additionally the same leaf count serially).

use std::collections::BTreeMap;
use std::time::Instant;

use svtox_exec::{min_by_stable, run_pool, Budget, ExecConfig, ExecError, SharedMinF64};
use svtox_sta::Sta;

use crate::checkpoint::{self, CheckpointMeta, CheckpointSpec, CheckpointWriter};
use crate::error::OptError;
use crate::outcome::{DegradeReason, RunOutcome};
use crate::solution::Solution;

use super::parallel::{prefix_depth, LeafKind, WorkerCtx};
use super::{BoundTracker, Optimizer};

impl<'a> Optimizer<'a> {
    /// Runs the Heuristic 2 search under the full robustness contract:
    /// retries and respawns per the engine's
    /// [`svtox_exec::RetryPolicy`], fault injection at every registered
    /// site, optional checkpointing, and a typed [`RunOutcome`] instead
    /// of an error that would discard the incumbent.
    ///
    /// Semantics match [`Optimizer::heuristic2_parallel`] exactly when
    /// nothing goes wrong: same seed, same bounds, same bit-identical
    /// result for any thread count.
    pub fn run(&self, exec: &ExecConfig, checkpoint: Option<&CheckpointSpec>) -> RunOutcome {
        self.run_with_budget(exec, &exec.budget_faulted(self.fault), checkpoint)
    }

    /// [`Optimizer::run`] under a caller-supplied [`Budget`].
    ///
    /// The caller owns the budget's deadline and cancellation token, so
    /// an external actor — a Ctrl-C handler, a job-cancel endpoint, a
    /// server shutdown — can stop the run cooperatively; the outcome is
    /// then [`RunOutcome::Degraded`] with
    /// [`crate::outcome::DegradeReason::Cancelled`] (or `DeadlineExpired`
    /// when the budget's own deadline fired first). Note the budget
    /// bypasses the `clock.skew` fault site, which only
    /// [`Optimizer::run`] routes through.
    pub fn run_with_budget(
        &self,
        exec: &ExecConfig,
        budget: &Budget,
        checkpoint: Option<&CheckpointSpec>,
    ) -> RunOutcome {
        match self.run_inner(exec, budget, checkpoint) {
            Ok(outcome) => outcome,
            Err(error) => RunOutcome::Failed { error },
        }
    }

    fn run_inner(
        &self,
        exec: &ExecConfig,
        budget: &Budget,
        spec: Option<&CheckpointSpec>,
    ) -> Result<RunOutcome, OptError> {
        let start = Instant::now();
        let netlist = self.problem.netlist();
        let order = self.input_order();
        let k = prefix_depth(exec.threads(), order.len());
        let num_tasks = 1usize << k;

        // Load and validate an existing checkpoint before spending any
        // search effort.
        let loaded = match spec {
            Some(s) if s.resume => checkpoint::load(&s.path)?,
            _ => None,
        };
        let (seed, recorded) = match loaded {
            Some(cp) => {
                self.validate_meta(&cp.meta, k, spec.expect("loaded implies a spec"))?;
                // The seed skips Heuristic 1, so surface library errors
                // here, once, on the caller's thread.
                Sta::new(netlist, self.problem.library(), self.problem.timing())?;
                (cp.meta.seed, cp.tasks)
            }
            None => (self.heuristic1()?, BTreeMap::new()),
        };
        let _span = self.obs.span("core.run");

        let resumed_tasks = recorded.len();
        let writer = match spec {
            Some(s) if s.resume && resumed_tasks > 0 => {
                Some(CheckpointWriter::append(&s.path, self.fault)?)
            }
            Some(s) => Some(CheckpointWriter::create(
                &s.path,
                &self.meta(k, &seed),
                self.fault,
            )?),
            None => None,
        };

        // The shared cross-worker incumbent starts from the seed and
        // every recorded best — exactly the values an uninterrupted run
        // would have published by the time those subtrees finished. The
        // *task-local* seed stays the original Heuristic 1 leakage so
        // each fresh subtree prunes exactly as it would have.
        let base_leaves = seed.leaves_explored;
        let seed_leak = seed.leakage.value();
        let shared = SharedMinF64::new(seed_leak);
        for rec in recorded.values() {
            if let Some(sol) = &rec.solution {
                shared.update_min(sol.leakage.value());
            }
        }
        let delay_budget = self.budget();

        let run = run_pool(
            exec,
            num_tasks,
            budget,
            self.obs,
            self.fault,
            |_worker| WorkerCtx {
                sta: Sta::new(netlist, self.problem.library(), self.problem.timing())
                    .expect("library already validated"),
                tracker: BoundTracker::new(self.problem, self.mode),
                vector: vec![false; netlist.num_inputs()],
            },
            |ctx, p, ws| {
                if let Some(rec) = recorded.get(&p) {
                    // Replay: the subtree was exhaustively explored in a
                    // previous run. Its leaf count keeps totals honest.
                    ws.leaves_evaluated += rec.leaves;
                    return rec.solution.clone();
                }
                let before = ws.leaves_evaluated;
                let sol = self.search_subtree(
                    ctx,
                    p,
                    k,
                    &order,
                    budget,
                    &shared,
                    seed_leak,
                    delay_budget,
                    LeafKind::Greedy,
                    ws,
                );
                // Record only subtrees the budget did not interrupt:
                // `expired` is monotone, so not-expired here proves the
                // DFS above ran to exhaustion.
                if !budget.expired() {
                    if let Some(w) = &writer {
                        w.record_task(p, ws.leaves_evaluated - before, sol.as_ref());
                    }
                }
                sol
            },
        );

        let stats = run.stats;
        self.obs.add("core.search.nodes", stats.nodes_expanded());
        self.obs.add("core.search.leaves", stats.leaves_evaluated());
        self.obs
            .add("core.search.prunes_local", stats.prunes_local());
        self.obs
            .add("core.search.prunes_shared", stats.prunes_shared());
        self.obs
            .add("core.search.incumbent_updates", stats.incumbent_updates());
        if resumed_tasks > 0 {
            self.obs.add("core.run.tasks_resumed", resumed_tasks as u64);
        }

        let mut best = min_by_stable(Some(seed), run.results, |a, b| a.leakage < b.leakage)
            .expect("seeded search always has an incumbent");
        best.runtime = start.elapsed();
        best.leaves_explored = base_leaves + stats.leaves_evaluated() as usize;

        if let Some(error) = run.error {
            return Ok(match error {
                ExecError::WorkerPanic { worker, message } => RunOutcome::Degraded {
                    reason: DegradeReason::WorkerLoss { worker, message },
                    best,
                    stats,
                },
                other => RunOutcome::Failed {
                    error: OptError::Exec(other),
                },
            });
        }
        if !run.failures.is_empty() {
            return Ok(RunOutcome::Degraded {
                reason: DegradeReason::TasksFailed {
                    failed: run.failures.len(),
                    first: run.failures[0].message.clone(),
                },
                best,
                stats,
            });
        }
        if !stats.completed {
            let reason = if budget.deadline_passed() {
                DegradeReason::DeadlineExpired
            } else {
                DegradeReason::Cancelled
            };
            return Ok(RunOutcome::Degraded {
                reason,
                best,
                stats,
            });
        }
        Ok(RunOutcome::Complete {
            solution: best,
            stats,
        })
    }

    /// The identity this run stamps into (and demands from) a checkpoint.
    pub(crate) fn meta(&self, k: usize, seed: &Solution) -> CheckpointMeta {
        let netlist = self.problem.netlist();
        CheckpointMeta {
            circuit: netlist.name().to_string(),
            inputs: netlist.num_inputs(),
            gates: netlist.num_gates(),
            penalty_bits: self.penalty.fraction().to_bits(),
            mode: self.mode,
            k,
            seed: seed.clone(),
            engine: None,
        }
    }

    /// Rejects a checkpoint recorded for a different problem or split.
    pub(crate) fn validate_meta(
        &self,
        meta: &CheckpointMeta,
        k: usize,
        spec: &CheckpointSpec,
    ) -> Result<(), OptError> {
        let netlist = self.problem.netlist();
        let at = spec.path.display();
        if meta.circuit != netlist.name() {
            return Err(OptError::Checkpoint(format!(
                "{at}: recorded circuit \"{}\" does not match \"{}\"",
                meta.circuit,
                netlist.name()
            )));
        }
        if meta.inputs != netlist.num_inputs() || meta.gates != netlist.num_gates() {
            return Err(OptError::Checkpoint(format!(
                "{at}: recorded size {}x{} does not match {}x{}",
                meta.inputs,
                meta.gates,
                netlist.num_inputs(),
                netlist.num_gates()
            )));
        }
        if meta.penalty_bits != self.penalty.fraction().to_bits() {
            return Err(OptError::Checkpoint(format!(
                "{at}: recorded delay penalty {} does not match {}",
                f64::from_bits(meta.penalty_bits),
                self.penalty.fraction()
            )));
        }
        if meta.mode != self.mode {
            return Err(OptError::Checkpoint(format!(
                "{at}: recorded mode {} does not match {}",
                checkpoint::mode_name(meta.mode),
                checkpoint::mode_name(self.mode)
            )));
        }
        if meta.k != k {
            return Err(OptError::Checkpoint(format!(
                "{at}: recorded split depth {} does not match {k} — \
                 resume with a thread count that maps to the same split",
                meta.k
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;

    use svtox_cells::{Library, LibraryOptions};
    use svtox_exec::{ExecConfig, RetryPolicy};
    use svtox_fault::{Fault, FaultPlan, Site, Trigger};
    use svtox_netlist::generators::{random_dag, RandomDagSpec};
    use svtox_netlist::Netlist;
    use svtox_sta::TimingConfig;
    use svtox_tech::Technology;

    use crate::checkpoint::CheckpointSpec;
    use crate::outcome::{DegradeReason, RunOutcome};
    use crate::problem::{DelayPenalty, Mode, Problem};

    fn small() -> (Netlist, Library) {
        let spec = RandomDagSpec::new("resilient-small", 7, 4, 32, 5);
        (
            random_dag(&spec).unwrap(),
            Library::new(Technology::predictive_65nm(), LibraryOptions::default()).unwrap(),
        )
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "svtox-resilient-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn fault_free_run_matches_heuristic2_parallel() {
        let (n, lib) = small();
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let exec = ExecConfig::with_threads(2);
        let (reference, _) = opt.heuristic2_parallel(&exec).unwrap();
        let outcome = opt.run(&exec, None);
        let RunOutcome::Complete { solution, stats } = outcome else {
            panic!("fault-free run must complete, got {outcome}");
        };
        assert!(stats.completed);
        assert!(solution.same_assignment(&reference));
        assert_eq!(solution.leaves_explored, reference.leaves_explored);
    }

    #[test]
    fn mid_search_kill_then_resume_is_bit_identical() {
        let (n, lib) = small();
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let exec = ExecConfig::with_threads(1);
        let (reference, _) = opt.heuristic2_parallel(&exec).unwrap();

        let path = temp_path("kill-resume");
        let plan = FaultPlan::new(11).with_rule(Site::CoreLeaf, Trigger::Nth(5));
        let fault = Fault::new(&plan);
        let killed = opt
            .with_fault(&fault)
            .run(&exec, Some(&CheckpointSpec::fresh(&path)));
        let RunOutcome::Degraded { reason, best, .. } = killed else {
            panic!("the kill fault must degrade the run, got {killed}");
        };
        assert_eq!(reason, DegradeReason::Cancelled);
        assert!(best.leakage.value() <= opt.heuristic1().unwrap().leakage.value() + 1e-12);

        let resumed = opt.run(&exec, Some(&CheckpointSpec::resume(&path)));
        let RunOutcome::Complete { solution, .. } = resumed else {
            panic!("resume must complete, got {resumed}");
        };
        assert!(solution.same_assignment(&reference));
        // Serially the replay is exact to the leaf count as well.
        assert_eq!(solution.leaves_explored, reference.leaves_explored);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn external_cancel_degrades_with_a_flushed_checkpoint() {
        use svtox_exec::{Budget, CancelToken};
        let (n, lib) = small();
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let exec = ExecConfig::with_threads(1);
        let (reference, _) = opt.heuristic2_parallel(&exec).unwrap();

        // A pre-cancelled external token: the run must degrade with
        // `Cancelled` (not the deadline) and still write a checkpoint a
        // later uncancelled run can resume bit-identically.
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::linked(None, token);
        let path = temp_path("external-cancel");
        let cancelled = opt.run_with_budget(&exec, &budget, Some(&CheckpointSpec::fresh(&path)));
        let RunOutcome::Degraded { reason, best, .. } = cancelled else {
            panic!("a cancelled run must degrade, got {cancelled}");
        };
        assert_eq!(reason, DegradeReason::Cancelled);
        assert!(best.same_assignment(&opt.heuristic1().unwrap()));

        let resumed = opt.run(&exec, Some(&CheckpointSpec::resume(&path)));
        let RunOutcome::Complete { solution, .. } = resumed else {
            panic!("resume must complete, got {resumed}");
        };
        assert!(solution.same_assignment(&reference));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_checkpoint_is_a_typed_failure() {
        let (n, lib) = small();
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let exec = ExecConfig::with_threads(1);
        let path = temp_path("foreign");
        let RunOutcome::Complete { .. } = opt.run(&exec, Some(&CheckpointSpec::fresh(&path)))
        else {
            panic!("baseline run must complete");
        };
        // Same circuit, different penalty: the identity check must fire.
        let other = problem.optimizer(DelayPenalty::new(0.25).unwrap(), Mode::Proposed);
        let outcome = other.run(&exec, Some(&CheckpointSpec::resume(&path)));
        let RunOutcome::Failed { error } = outcome else {
            panic!("mismatched checkpoint must fail, got {outcome}");
        };
        assert!(error.to_string().contains("penalty"), "got {error}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dispatch_panic_storm_degrades_but_keeps_a_valid_incumbent() {
        let (n, lib) = small();
        let problem = Problem::new(&n, &lib, TimingConfig::default()).unwrap();
        let opt = problem.optimizer(DelayPenalty::five_percent(), Mode::Proposed);
        let h1 = opt.heuristic1().unwrap();
        // Every dispatch panics and retries are exhausted instantly: all
        // tasks fail, yet the outcome still carries the seed.
        let plan = FaultPlan::new(3).with_rule(Site::ExecDispatch, Trigger::EveryNth(1));
        let fault = Fault::new(&plan);
        let exec = ExecConfig::with_threads(2).with_retries(RetryPolicy {
            max_task_retries: 1,
            max_respawns: 0,
        });
        let outcome = opt.with_fault(&fault).run(&exec, None);
        let RunOutcome::Degraded { reason, best, .. } = outcome else {
            panic!("a storm over every task must degrade, got {outcome}");
        };
        assert!(
            matches!(reason, DegradeReason::TasksFailed { .. }),
            "{reason}"
        );
        assert!(best.same_assignment(&h1), "the incumbent is the H1 seed");
        best.verify(&problem).unwrap();
    }
}
