//! Typed run outcomes: the graceful-degradation contract.
//!
//! The paper's Heuristic 2 is naturally *anytime* — it holds a
//! monotonically improving incumbent from the moment Heuristic 1 seeds
//! it. [`RunOutcome`] turns that property into an API: a deadline, a
//! cancellation, or an exhausted fault-tolerance budget produces
//! [`RunOutcome::Degraded`] carrying the best solution found so far (and
//! *why* the run fell short), instead of discarding the incumbent behind
//! an error. Only conditions that prevent having any solution at all —
//! a library lookup failure, an unreadable checkpoint — are
//! [`RunOutcome::Failed`].

use std::fmt;

use svtox_exec::SearchStats;

use crate::error::OptError;
use crate::solution::Solution;

/// Why a run degraded instead of completing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DegradeReason {
    /// The wall-clock budget expired before the tree was exhausted.
    DeadlineExpired,
    /// The run's cancellation token was flipped (externally, or by a
    /// mid-search kill fault).
    Cancelled,
    /// A worker died and the respawn budget could not recover it; the
    /// results of every task that finished earlier were kept.
    WorkerLoss {
        /// Index of the lost worker.
        worker: usize,
        /// Its panic payload.
        message: String,
    },
    /// Some tasks panicked through their retry budget; their subtrees
    /// went unexplored but every other task's result was kept.
    TasksFailed {
        /// Number of tasks that failed.
        failed: usize,
        /// The first failing task's panic payload.
        first: String,
    },
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DeadlineExpired => f.write_str("time budget expired"),
            Self::Cancelled => f.write_str("cancelled"),
            Self::WorkerLoss { worker, message } => {
                write!(f, "worker {worker} lost: {message}")
            }
            Self::TasksFailed { failed, first } => {
                write!(f, "{failed} task(s) failed, first: {first}")
            }
        }
    }
}

/// The outcome of a production optimizer run ([`super::Optimizer::run`]).
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The search exhausted its tree: the solution is the engine's
    /// optimum for the configured mode.
    Complete {
        /// The final solution.
        solution: Solution,
        /// Aggregated engine counters.
        stats: SearchStats,
    },
    /// The search fell short of exhaustion but holds a valid incumbent:
    /// `best` meets the delay budget and its leakage is at or below the
    /// Heuristic 1 seed (the anytime guarantee).
    Degraded {
        /// Why the run fell short.
        reason: DegradeReason,
        /// The best solution found before degradation.
        best: Solution,
        /// Aggregated engine counters.
        stats: SearchStats,
    },
    /// No solution exists: problem construction or checkpoint validation
    /// failed before the seed was produced.
    Failed {
        /// The underlying error.
        error: OptError,
    },
}

impl RunOutcome {
    /// The solution carried by a non-failed outcome.
    #[must_use]
    pub fn best(&self) -> Option<&Solution> {
        match self {
            Self::Complete { solution, .. } => Some(solution),
            Self::Degraded { best, .. } => Some(best),
            Self::Failed { .. } => None,
        }
    }

    /// The engine counters of a non-failed outcome.
    #[must_use]
    pub fn stats(&self) -> Option<&SearchStats> {
        match self {
            Self::Complete { stats, .. } | Self::Degraded { stats, .. } => Some(stats),
            Self::Failed { .. } => None,
        }
    }

    /// Whether the search exhausted its tree.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, Self::Complete { .. })
    }

    /// A one-word status for reports: `complete`, `degraded`, `failed`.
    #[must_use]
    pub fn status(&self) -> &'static str {
        match self {
            Self::Complete { .. } => "complete",
            Self::Degraded { .. } => "degraded",
            Self::Failed { .. } => "failed",
        }
    }

    /// Collapses into a `Result`, treating a degraded incumbent as
    /// success (the anytime view).
    ///
    /// # Errors
    ///
    /// Returns the error of a [`RunOutcome::Failed`].
    pub fn into_result(self) -> Result<(Solution, SearchStats), OptError> {
        match self {
            Self::Complete { solution, stats } => Ok((solution, stats)),
            Self::Degraded { best, stats, .. } => Ok((best, stats)),
            Self::Failed { error } => Err(error),
        }
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Complete { solution, .. } => write!(f, "complete: {solution}"),
            Self::Degraded { reason, best, .. } => write!(f, "degraded ({reason}): {best}"),
            Self::Failed { error } => write!(f, "failed: {error}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_reasons_render_their_cause() {
        assert_eq!(
            DegradeReason::DeadlineExpired.to_string(),
            "time budget expired"
        );
        let loss = DegradeReason::WorkerLoss {
            worker: 2,
            message: "boom".into(),
        };
        assert!(loss.to_string().contains("worker 2"));
        let failed = DegradeReason::TasksFailed {
            failed: 3,
            first: "bang".into(),
        };
        assert!(failed.to_string().contains("3 task(s)"));
    }

    #[test]
    fn failed_outcome_has_no_best_and_errors_out() {
        let outcome = RunOutcome::Failed {
            error: OptError::InvalidPenalty(2.0f64.to_bits()),
        };
        assert!(outcome.best().is_none());
        assert!(outcome.stats().is_none());
        assert_eq!(outcome.status(), "failed");
        assert!(outcome.into_result().is_err());
    }
}
