//! Logic simulation for standby-state analysis.
//!
//! Three engines, all built on the `svtox-netlist` IR:
//!
//! * [`Simulator`] — two-valued, event-driven. Gives every gate's input
//!   state for a candidate standby vector; single-input flips re-evaluate
//!   only the affected fanout cone (the state-tree search flips one primary
//!   input per tree edge).
//! * [`TriSimulator`] — three-valued (`0`/`1`/`X`), also event-driven. With
//!   only part of the standby vector decided, each gate's reachable input
//!   states form a small set ([`TriSimulator::possible_states`]); the
//!   optimizer turns those into leakage bounds for pruning and ordering the
//!   state tree.
//! * [`PackedSimulator`] / [`PackedTriSimulator`] — bit-parallel word-level
//!   engines: one `u64` plane per net packs 64 vectors per lane
//!   ([`packed`] module docs spell out the lane order, tail masking and
//!   dual-plane X encoding). These drive the leakage hot paths.
//! * [`random_average_leakage`] — the paper's baseline: average total
//!   leakage of the all-fast netlist over N random vectors (Table 3/4's
//!   "Average leakage by random (10K) vectors" column), evaluated 64
//!   vectors per DAG sweep;
//! * [`expected_leakage`] — the analytic counterpart: signal-probability
//!   propagation instead of Monte Carlo (exact on trees, within a few
//!   percent on the suite, orders of magnitude faster).
//!
//! # Example
//!
//! ```
//! use svtox_netlist::generators::benchmark;
//! use svtox_sim::Simulator;
//!
//! # fn main() -> Result<(), svtox_netlist::NetlistError> {
//! let c432 = benchmark("c432")?;
//! let mut sim = Simulator::new(&c432);
//! sim.set_inputs(&vec![true; c432.num_inputs()]);
//! let state = sim.gate_state(c432.topo_order()[0]);
//! assert_eq!(state.arity(), c432.gate(c432.topo_order()[0]).inputs().len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod logic;
pub mod packed;
mod probability;
mod random;
mod tri;
mod two;

pub use logic::Logic;
pub use packed::{PackedSimulator, PackedTriSimulator, PackedTriVec, PackedVec, LANES};
pub use probability::{expected_leakage, signal_probabilities};
pub use random::{
    random_average_leakage, random_average_leakage_parallel, vector_leakage, vector_leakage_batch,
    LeakageTotals, CHUNK_SIZE,
};
#[cfg(feature = "scalar-ref")]
pub use random::{random_average_leakage_scalar, random_average_leakage_scalar_parallel};
pub use tri::TriSimulator;
pub use two::Simulator;
