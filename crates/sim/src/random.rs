//! Random-vector average leakage — the paper's no-optimization baseline.
//!
//! Sampling is *chunked*: vectors are drawn in fixed-size chunks of
//! [`CHUNK_SIZE`], chunk `i` seeded via [`derive_seed`]`(seed, i)`, and the
//! per-chunk partial sums are reduced in chunk-index order. The estimate is
//! therefore bit-identical for any worker count — the serial entry point
//! [`random_average_leakage`] is just the parallel one run on one thread.

use svtox_cells::{Library, LibraryError};
use svtox_exec::rng::{derive_seed, Xoshiro256pp};
use svtox_exec::{map_tasks, Budget, ExecConfig};
use svtox_netlist::Netlist;
use svtox_obs::Obs;
use svtox_tech::Current;

use crate::two::Simulator;

/// Number of vectors per independently-seeded sampling chunk.
///
/// Fixed (not derived from the worker count) so the chunk boundaries — and
/// with them every drawn vector — are the same no matter how the work is
/// spread over threads.
pub const CHUNK_SIZE: usize = 256;

/// Aggregated leakage of one vector or an average of many.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LeakageTotals {
    /// Total standby current (Isub + Igate) of the whole netlist.
    pub total: Current,
    /// Subthreshold component.
    pub isub: Current,
    /// Gate-tunneling component.
    pub igate: Current,
}

impl LeakageTotals {
    /// Total current in the paper's µA units.
    #[must_use]
    pub fn as_micro_amps(&self) -> f64 {
        self.total.as_micro_amps()
    }

    /// Fraction of the total that is gate tunneling (the paper quotes
    /// "approximately 36 %" for the fast corner of its 65 nm process).
    #[must_use]
    pub fn igate_share(&self) -> f64 {
        self.igate.value() / self.total.value()
    }
}

/// Leakage of the all-fast netlist under one specific input vector.
///
/// # Errors
///
/// Returns an error if the netlist uses a gate kind absent from the library.
///
/// # Panics
///
/// Panics if `vector.len()` differs from the input count.
pub fn vector_leakage(
    netlist: &Netlist,
    library: &Library,
    vector: &[bool],
) -> Result<LeakageTotals, LibraryError> {
    let mut sim = Simulator::new(netlist);
    sim.set_inputs(vector);
    let mut totals = LeakageTotals::default();
    for (gid, gate) in netlist.gates() {
        let cell = library.cell(gate.kind())?;
        let split = cell.leakage_breakdown(cell.fast_version(), sim.gate_state(gid));
        totals.isub += split.isub;
        totals.igate += split.igate;
    }
    totals.total = totals.isub + totals.igate;
    Ok(totals)
}

/// Average total leakage of the all-fast netlist over `num_vectors` random
/// input vectors (the "average leakage by random (10K) vectors" column of
/// the paper's Tables 3–5).
///
/// Deterministic for a given `seed`.
///
/// # Errors
///
/// Returns an error if the netlist uses a gate kind absent from the library.
///
/// # Example
///
/// ```
/// use svtox_cells::{Library, LibraryOptions};
/// use svtox_netlist::generators::benchmark;
/// use svtox_sim::random_average_leakage;
/// use svtox_tech::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = Library::new(Technology::predictive_65nm(), LibraryOptions::default())?;
/// let c432 = benchmark("c432")?;
/// let avg = random_average_leakage(&c432, &lib, 100, 42)?;
/// assert!(avg.as_micro_amps() > 1.0);
/// # Ok(())
/// # }
/// ```
pub fn random_average_leakage(
    netlist: &Netlist,
    library: &Library,
    num_vectors: usize,
    seed: u64,
) -> Result<LeakageTotals, LibraryError> {
    random_average_leakage_parallel(
        netlist,
        library,
        num_vectors,
        seed,
        &ExecConfig::serial(),
        Obs::disabled_ref(),
    )
}

/// [`random_average_leakage`] spread over the workers of `exec`.
///
/// Bit-identical to the serial estimate for any thread count: chunk `i`
/// draws its vectors from a stream derived as `derive_seed(seed, i)` and
/// the per-chunk sums are folded in chunk-index order. With an enabled
/// `obs` handle the run records a `sim.random_average` span and the
/// `sim.vectors_sampled` counter (also thread-count invariant).
///
/// # Errors
///
/// Returns an error if the netlist uses a gate kind absent from the library.
pub fn random_average_leakage_parallel(
    netlist: &Netlist,
    library: &Library,
    num_vectors: usize,
    seed: u64,
    exec: &ExecConfig,
    obs: &Obs,
) -> Result<LeakageTotals, LibraryError> {
    assert!(num_vectors > 0, "need at least one vector");
    // Resolve each gate's cell once; per-vector work is pure table lookups.
    let cells: Vec<_> = netlist
        .gates()
        .map(|(_, g)| library.cell(g.kind()))
        .collect::<Result<Vec<_>, _>>()?;
    let _span = obs.span("sim.random_average");
    let num_chunks = num_vectors.div_ceil(CHUNK_SIZE);
    // The baseline is part of the answer, not a search: ignore any time
    // budget on `exec` and always sample every chunk. Sampling tasks are
    // pure table lookups, so a worker panic here is a bug, not a
    // recoverable condition.
    let (partials, _stats) = map_tasks(
        exec,
        num_chunks,
        &Budget::unlimited(),
        obs,
        |_worker| (Simulator::new(netlist), vec![false; netlist.num_inputs()]),
        |(sim, vector), chunk, _ws| {
            let start = chunk * CHUNK_SIZE;
            let end = (start + CHUNK_SIZE).min(num_vectors);
            let mut rng = Xoshiro256pp::seed_from_u64(derive_seed(seed, chunk as u64));
            let mut sum_isub = 0.0;
            let mut sum_igate = 0.0;
            for _ in start..end {
                for v in vector.iter_mut() {
                    *v = rng.gen_bool(0.5);
                }
                sim.set_inputs(vector);
                for ((gid, _), cell) in netlist.gates().zip(&cells) {
                    let split = cell.leakage_breakdown(cell.fast_version(), sim.gate_state(gid));
                    sum_isub += split.isub.value();
                    sum_igate += split.igate.value();
                }
            }
            Some((sum_isub, sum_igate))
        },
    )
    .expect("sampling tasks do not panic");
    obs.add("sim.vectors_sampled", num_vectors as u64);
    let mut sum_isub = 0.0;
    let mut sum_igate = 0.0;
    for (isub, igate) in partials.into_iter().flatten() {
        sum_isub += isub;
        sum_igate += igate;
    }
    let isub = Current::new(sum_isub / num_vectors as f64);
    let igate = Current::new(sum_igate / num_vectors as f64);
    Ok(LeakageTotals {
        total: isub + igate,
        isub,
        igate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use svtox_cells::LibraryOptions;
    use svtox_netlist::generators::benchmark;
    use svtox_tech::Technology;

    fn library() -> Library {
        Library::new(Technology::predictive_65nm(), LibraryOptions::default()).unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let lib = library();
        let n = benchmark("c432").unwrap();
        let a = random_average_leakage(&n, &lib, 50, 1).unwrap();
        let b = random_average_leakage(&n, &lib, 50, 1).unwrap();
        let c = random_average_leakage(&n, &lib, 50, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn average_sits_between_extreme_vectors() {
        let lib = library();
        let n = benchmark("c432").unwrap();
        let avg = random_average_leakage(&n, &lib, 200, 3).unwrap().total;
        let zeros = vector_leakage(&n, &lib, &vec![false; n.num_inputs()])
            .unwrap()
            .total;
        let ones = vector_leakage(&n, &lib, &vec![true; n.num_inputs()])
            .unwrap()
            .total;
        let lo = zeros.min(ones);
        let hi = zeros.max(ones);
        // Not a strict mathematical bound, but a strong sanity band.
        assert!(avg.value() > lo.value() * 0.5, "avg {avg} lo {lo}");
        assert!(avg.value() < hi.value() * 2.0, "avg {avg} hi {hi}");
    }

    #[test]
    fn scale_matches_paper_regime() {
        // The paper reports 24.5 µA for c432 (177 gates). Our calibration
        // and sizing differ, but the per-gate average should land within a
        // factor-4 band of the paper's ~0.14 µA/gate.
        let lib = library();
        let n = benchmark("c432").unwrap();
        let avg = random_average_leakage(&n, &lib, 500, 7).unwrap();
        let per_gate = avg.as_micro_amps() / n.num_gates() as f64;
        assert!(
            (0.035..0.56).contains(&per_gate),
            "per-gate average {per_gate} µA"
        );
    }

    #[test]
    fn gate_share_matches_paper_claim() {
        // Paper §2: gate leakage ≈ 36% of the total at room temperature for
        // the fast corner. Our calibrated model should land in a 25-45%
        // band across circuits.
        let lib = library();
        for name in ["c432", "c880"] {
            let n = benchmark(name).unwrap();
            let avg = random_average_leakage(&n, &lib, 300, 5).unwrap();
            let share = avg.igate_share();
            assert!(
                (0.25..0.45).contains(&share),
                "{name}: igate share {share:.2}"
            );
            assert!(
                (avg.isub + avg.igate - avg.total).abs() < 1e-9,
                "components must sum"
            );
        }
    }

    #[test]
    fn parallel_estimate_is_thread_count_invariant() {
        let lib = library();
        let n = benchmark("c432").unwrap();
        // 600 vectors → 3 chunks, so the work actually splits.
        let serial = random_average_leakage(&n, &lib, 600, 9).unwrap();
        for threads in [2, 4, 8] {
            let par = random_average_leakage_parallel(
                &n,
                &lib,
                600,
                9,
                &ExecConfig::with_threads(threads),
                Obs::disabled_ref(),
            )
            .unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn more_vectors_converge() {
        let lib = library();
        let n = benchmark("c432").unwrap();
        let a = random_average_leakage(&n, &lib, 400, 11).unwrap().total;
        let b = random_average_leakage(&n, &lib, 400, 13).unwrap().total;
        let rel = (a.value() - b.value()).abs() / a.value();
        assert!(rel < 0.05, "two 400-vector estimates differ by {rel}");
    }
}
