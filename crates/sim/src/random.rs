//! Random-vector average leakage — the paper's no-optimization baseline.
//!
//! Sampling is *chunked*: vectors are drawn in fixed-size chunks of
//! [`CHUNK_SIZE`], chunk `i` seeded via [`derive_seed`]`(seed, i)`, and the
//! per-chunk partial sums are reduced in chunk-index order. The estimate is
//! therefore bit-identical for any worker count — the serial entry point
//! [`random_average_leakage`] is just the parallel one run on one thread.
//!
//! # Packed sampling contract
//!
//! The hot path is word-level: each chunk is evaluated as
//! `CHUNK_SIZE / 64` packed word blocks of [`LANES`] vectors. Within a
//! chunk the stream draws **one `next_u64` per primary input per word
//! block**, in input order; bit `l` (LSB first) of the draw for input `i`
//! is the value of input `i` under vector `chunk · CHUNK_SIZE + 64·w + l`.
//! A ragged tail (`num_vectors` not a multiple of 64) still consumes full
//! words — the tail mask applies to leakage *accumulation*, never to the
//! stream — so the vectors a seed denotes do not depend on the total count
//! modulo 64. [`CHUNK_SIZE`] is statically a multiple of [`LANES`], so
//! word blocks never straddle a chunk boundary and the estimate stays
//! bit-identical at any thread count.
//!
//! This contract supersedes the original scalar one (one `gen_bool(0.5)`
//! per input per vector). The scalar path survives verbatim behind the
//! `scalar-ref` feature as [`random_average_leakage_scalar`] /
//! [`random_average_leakage_scalar_parallel`]; its per-seed estimates are
//! pinned by regression tests so the historical numbers stay reproducible.
//!
//! Per-gate leakage is accumulated per word with a state-mask sweep: for a
//! gate of arity `a`, each input state `s ∈ 0..2^a` selects the lanes
//! `m = tail ∧ ⋀_p (w_p if s_p else ¬w_p)` and contributes
//! `popcount(m) · leak[s]` — `2^a` word ops instead of 64 scalar table
//! walks.

use svtox_cells::{Library, LibraryError};
use svtox_exec::rng::{derive_seed, Xoshiro256pp};
use svtox_exec::{map_tasks, Budget, ExecConfig};
use svtox_netlist::{GateKind, Netlist};
use svtox_obs::Obs;
use svtox_tech::Current;

use crate::packed::{PackedSimulator, PackedVec, LANES};
#[cfg(feature = "scalar-ref")]
use crate::two::Simulator;

/// Number of vectors per independently-seeded sampling chunk.
///
/// Fixed (not derived from the worker count) so the chunk boundaries — and
/// with them every drawn vector — are the same no matter how the work is
/// spread over threads. Statically a multiple of [`LANES`] so packed word
/// blocks never straddle chunks.
pub const CHUNK_SIZE: usize = 256;

// Word alignment is load-bearing for thread-count invariance; break it and
// the build breaks.
const _: () = assert!(
    CHUNK_SIZE.is_multiple_of(LANES),
    "CHUNK_SIZE must be a multiple of the packed lane width"
);

/// Aggregated leakage of one vector or an average of many.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LeakageTotals {
    /// Total standby current (Isub + Igate) of the whole netlist.
    pub total: Current,
    /// Subthreshold component.
    pub isub: Current,
    /// Gate-tunneling component.
    pub igate: Current,
}

impl LeakageTotals {
    /// Total current in the paper's µA units.
    #[must_use]
    pub fn as_micro_amps(&self) -> f64 {
        self.total.as_micro_amps()
    }

    /// Fraction of the total that is gate tunneling (the paper quotes
    /// "approximately 36 %" for the fast corner of its 65 nm process).
    #[must_use]
    pub fn igate_share(&self) -> f64 {
        self.igate.value() / self.total.value()
    }
}

/// Per-gate leakage lookup table: `isub[s]` / `igate[s]` for every input
/// state `s` of the gate's fast version, resolved once per run so the
/// sampling loop is pure word ops and table adds.
struct LeakTable {
    arity: usize,
    isub: Vec<f64>,
    igate: Vec<f64>,
}

fn leak_tables(netlist: &Netlist, library: &Library) -> Result<Vec<LeakTable>, LibraryError> {
    netlist
        .gates()
        .map(|(_, gate)| {
            let cell = library.cell(gate.kind())?;
            let arity = gate.kind().arity();
            let fast = cell.fast_version();
            let mut isub = Vec::with_capacity(1 << arity);
            let mut igate = Vec::with_capacity(1 << arity);
            for bits in 0..(1u16 << arity) {
                let split =
                    cell.leakage_breakdown(fast, svtox_cells::InputState::from_bits(bits, arity));
                isub.push(split.isub.value());
                igate.push(split.igate.value());
            }
            Ok(LeakTable { arity, isub, igate })
        })
        .collect()
}

/// Adds every active lane's leakage of the currently-loaded word block into
/// `(isub, igate)` sums via the per-state mask sweep.
fn accumulate_word(
    netlist: &Netlist,
    sim: &PackedSimulator<'_>,
    tables: &[LeakTable],
    tail: u64,
) -> (f64, f64) {
    let mut sum_isub = 0.0;
    let mut sum_igate = 0.0;
    let mut pins = [0u64; GateKind::MAX_ARITY];
    for ((_, gate), table) in netlist.gates().zip(tables) {
        let ins = gate.inputs();
        for (slot, &n) in pins.iter_mut().zip(ins) {
            *slot = sim.word(n);
        }
        for (state, (isub, igate)) in table.isub.iter().zip(&table.igate).enumerate() {
            let mut m = tail;
            for (p, &w) in pins[..table.arity].iter().enumerate() {
                m &= if state >> p & 1 == 1 { w } else { !w };
                if m == 0 {
                    break;
                }
            }
            if m != 0 {
                let lanes = f64::from(m.count_ones());
                sum_isub += lanes * isub;
                sum_igate += lanes * igate;
            }
        }
    }
    (sum_isub, sum_igate)
}

/// Leakage of the all-fast netlist under one specific input vector.
///
/// # Errors
///
/// Returns an error if the netlist uses a gate kind absent from the library.
///
/// # Panics
///
/// Panics if `vector.len()` differs from the input count.
pub fn vector_leakage(
    netlist: &Netlist,
    library: &Library,
    vector: &[bool],
) -> Result<LeakageTotals, LibraryError> {
    let totals = vector_leakage_batch(netlist, library, std::slice::from_ref(&vector.to_vec()))?;
    Ok(totals[0])
}

/// Leakage of the all-fast netlist under each of `vectors`, evaluated in
/// packed word blocks of up to [`LANES`] vectors per DAG sweep.
///
/// The per-vector totals are accumulated lane-wise in gate-id order with
/// the same table values the scalar path used, so each entry is
/// bit-identical to a standalone [`vector_leakage`] call on that vector.
/// One simulator and one set of leakage tables serve the whole batch —
/// nothing is reallocated per vector.
///
/// # Errors
///
/// Returns an error if the netlist uses a gate kind absent from the library.
///
/// # Panics
///
/// Panics if any vector's length differs from the input count.
pub fn vector_leakage_batch(
    netlist: &Netlist,
    library: &Library,
    vectors: &[Vec<bool>],
) -> Result<Vec<LeakageTotals>, LibraryError> {
    let tables = leak_tables(netlist, library)?;
    let mut sim = PackedSimulator::new(netlist);
    let mut out = Vec::with_capacity(vectors.len());
    for block in vectors.chunks(LANES) {
        sim.set_inputs(&PackedVec::from_vectors(block));
        for lane in 0..block.len() {
            let mut sum_isub = 0.0;
            let mut sum_igate = 0.0;
            for ((gid, _), table) in netlist.gates().zip(&tables) {
                let state = sim.gate_state(gid, lane).bits() as usize;
                sum_isub += table.isub[state];
                sum_igate += table.igate[state];
            }
            let isub = Current::new(sum_isub);
            let igate = Current::new(sum_igate);
            out.push(LeakageTotals {
                total: isub + igate,
                isub,
                igate,
            });
        }
    }
    Ok(out)
}

/// Average total leakage of the all-fast netlist over `num_vectors` random
/// input vectors (the "average leakage by random (10K) vectors" column of
/// the paper's Tables 3–5), evaluated 64 vectors per DAG sweep.
///
/// Deterministic for a given `seed` under the packed sampling contract
/// described in the [module docs](self).
///
/// # Errors
///
/// Returns an error if the netlist uses a gate kind absent from the library.
///
/// # Example
///
/// ```
/// use svtox_cells::{Library, LibraryOptions};
/// use svtox_netlist::generators::benchmark;
/// use svtox_sim::random_average_leakage;
/// use svtox_tech::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = Library::new(Technology::predictive_65nm(), LibraryOptions::default())?;
/// let c432 = benchmark("c432")?;
/// let avg = random_average_leakage(&c432, &lib, 100, 42)?;
/// assert!(avg.as_micro_amps() > 1.0);
/// # Ok(())
/// # }
/// ```
pub fn random_average_leakage(
    netlist: &Netlist,
    library: &Library,
    num_vectors: usize,
    seed: u64,
) -> Result<LeakageTotals, LibraryError> {
    random_average_leakage_parallel(
        netlist,
        library,
        num_vectors,
        seed,
        &ExecConfig::serial(),
        Obs::disabled_ref(),
    )
}

/// [`random_average_leakage`] spread over the workers of `exec`.
///
/// Bit-identical to the serial estimate for any thread count: chunk `i`
/// draws its word blocks from a stream derived as `derive_seed(seed, i)`,
/// chunks are word-aligned (`CHUNK_SIZE % 64 == 0`), and the per-chunk
/// sums are folded in chunk-index order. With an enabled `obs` handle the
/// run records a `sim.random_average` span plus the `sim.vectors_sampled`,
/// `sim.packed.words`, `sim.packed.gate_evals` and `sim.packed.lanes_masked`
/// counters (all thread-count invariant).
///
/// # Errors
///
/// Returns an error if the netlist uses a gate kind absent from the library.
pub fn random_average_leakage_parallel(
    netlist: &Netlist,
    library: &Library,
    num_vectors: usize,
    seed: u64,
    exec: &ExecConfig,
    obs: &Obs,
) -> Result<LeakageTotals, LibraryError> {
    assert!(num_vectors > 0, "need at least one vector");
    // Resolve per-gate leakage tables once; per-word work is pure bit ops.
    let tables = leak_tables(netlist, library)?;
    let _span = obs.span("sim.random_average");
    let num_chunks = num_vectors.div_ceil(CHUNK_SIZE);
    let num_inputs = netlist.num_inputs();
    // The baseline is part of the answer, not a search: ignore any time
    // budget on `exec` and always sample every chunk. Sampling tasks are
    // pure table lookups, so a worker panic here is a bug, not a
    // recoverable condition.
    let (partials, _stats) = map_tasks(
        exec,
        num_chunks,
        &Budget::unlimited(),
        obs,
        |_worker| PackedSimulator::new(netlist),
        |sim, chunk, _ws| {
            let start = chunk * CHUNK_SIZE;
            let end = (start + CHUNK_SIZE).min(num_vectors);
            let mut rng = Xoshiro256pp::seed_from_u64(derive_seed(seed, chunk as u64));
            let mut sum = (0.0, 0.0);
            let mut covered = start;
            while covered < end {
                let lanes = (end - covered).min(LANES);
                // Full word of draws even on a ragged tail: the mask gates
                // accumulation, not the stream.
                sim.set_inputs(&PackedVec::fill_from_rng(num_inputs, &mut rng));
                let tail = if lanes == LANES {
                    u64::MAX
                } else {
                    (1u64 << lanes) - 1
                };
                let (isub, igate) = accumulate_word(netlist, sim, &tables, tail);
                sum.0 += isub;
                sum.1 += igate;
                covered += lanes;
            }
            Some(sum)
        },
    )
    .expect("sampling tasks do not panic");
    // CHUNK_SIZE % LANES == 0 ⇒ only the last chunk is ragged, so the
    // total word count is exactly ceil(num_vectors / LANES).
    let words = num_vectors.div_ceil(LANES);
    obs.add("sim.vectors_sampled", num_vectors as u64);
    obs.add("sim.packed.words", words as u64);
    obs.add(
        "sim.packed.gate_evals",
        (words * netlist.num_gates()) as u64,
    );
    obs.add(
        "sim.packed.lanes_masked",
        (words * LANES - num_vectors) as u64,
    );
    let mut sum_isub = 0.0;
    let mut sum_igate = 0.0;
    for (isub, igate) in partials.into_iter().flatten() {
        sum_isub += isub;
        sum_igate += igate;
    }
    let isub = Current::new(sum_isub / num_vectors as f64);
    let igate = Current::new(sum_igate / num_vectors as f64);
    Ok(LeakageTotals {
        total: isub + igate,
        isub,
        igate,
    })
}

/// Scalar reference estimator: the pre-packed Monte-Carlo baseline,
/// preserved verbatim (draw contract, evaluation order, float summation)
/// behind the `scalar-ref` feature.
///
/// Per-seed estimates of this path are pinned by regression tests; the
/// sim-bench and the differential oracles use it as the ground truth the
/// packed path is measured and checked against.
///
/// # Errors
///
/// Returns an error if the netlist uses a gate kind absent from the library.
#[cfg(feature = "scalar-ref")]
pub fn random_average_leakage_scalar(
    netlist: &Netlist,
    library: &Library,
    num_vectors: usize,
    seed: u64,
) -> Result<LeakageTotals, LibraryError> {
    random_average_leakage_scalar_parallel(
        netlist,
        library,
        num_vectors,
        seed,
        &ExecConfig::serial(),
        Obs::disabled_ref(),
    )
}

/// [`random_average_leakage_scalar`] spread over the workers of `exec` —
/// the original one-vector-at-a-time chunk loop, bit-identical at any
/// thread count under the *scalar* draw contract (one `gen_bool(0.5)` per
/// input per vector).
///
/// # Errors
///
/// Returns an error if the netlist uses a gate kind absent from the library.
#[cfg(feature = "scalar-ref")]
pub fn random_average_leakage_scalar_parallel(
    netlist: &Netlist,
    library: &Library,
    num_vectors: usize,
    seed: u64,
    exec: &ExecConfig,
    obs: &Obs,
) -> Result<LeakageTotals, LibraryError> {
    assert!(num_vectors > 0, "need at least one vector");
    let cells: Vec<_> = netlist
        .gates()
        .map(|(_, g)| library.cell(g.kind()))
        .collect::<Result<Vec<_>, _>>()?;
    let _span = obs.span("sim.random_average");
    let num_chunks = num_vectors.div_ceil(CHUNK_SIZE);
    let (partials, _stats) = map_tasks(
        exec,
        num_chunks,
        &Budget::unlimited(),
        obs,
        |_worker| (Simulator::new(netlist), vec![false; netlist.num_inputs()]),
        |(sim, vector), chunk, _ws| {
            let start = chunk * CHUNK_SIZE;
            let end = (start + CHUNK_SIZE).min(num_vectors);
            let mut rng = Xoshiro256pp::seed_from_u64(derive_seed(seed, chunk as u64));
            let mut sum_isub = 0.0;
            let mut sum_igate = 0.0;
            for _ in start..end {
                for v in vector.iter_mut() {
                    *v = rng.gen_bool(0.5);
                }
                sim.set_inputs(vector);
                for ((gid, _), cell) in netlist.gates().zip(&cells) {
                    let split = cell.leakage_breakdown(cell.fast_version(), sim.gate_state(gid));
                    sum_isub += split.isub.value();
                    sum_igate += split.igate.value();
                }
            }
            Some((sum_isub, sum_igate))
        },
    )
    .expect("sampling tasks do not panic");
    obs.add("sim.vectors_sampled", num_vectors as u64);
    let mut sum_isub = 0.0;
    let mut sum_igate = 0.0;
    for (isub, igate) in partials.into_iter().flatten() {
        sum_isub += isub;
        sum_igate += igate;
    }
    let isub = Current::new(sum_isub / num_vectors as f64);
    let igate = Current::new(sum_igate / num_vectors as f64);
    Ok(LeakageTotals {
        total: isub + igate,
        isub,
        igate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use svtox_cells::LibraryOptions;
    use svtox_netlist::generators::benchmark;
    use svtox_tech::Technology;

    fn library() -> Library {
        Library::new(Technology::predictive_65nm(), LibraryOptions::default()).unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let lib = library();
        let n = benchmark("c432").unwrap();
        let a = random_average_leakage(&n, &lib, 50, 1).unwrap();
        let b = random_average_leakage(&n, &lib, 50, 1).unwrap();
        let c = random_average_leakage(&n, &lib, 50, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn average_sits_between_extreme_vectors() {
        let lib = library();
        let n = benchmark("c432").unwrap();
        let avg = random_average_leakage(&n, &lib, 200, 3).unwrap().total;
        let zeros = vector_leakage(&n, &lib, &vec![false; n.num_inputs()])
            .unwrap()
            .total;
        let ones = vector_leakage(&n, &lib, &vec![true; n.num_inputs()])
            .unwrap()
            .total;
        let lo = zeros.min(ones);
        let hi = zeros.max(ones);
        // Not a strict mathematical bound, but a strong sanity band.
        assert!(avg.value() > lo.value() * 0.5, "avg {avg} lo {lo}");
        assert!(avg.value() < hi.value() * 2.0, "avg {avg} hi {hi}");
    }

    #[test]
    fn scale_matches_paper_regime() {
        // The paper reports 24.5 µA for c432 (177 gates). Our calibration
        // and sizing differ, but the per-gate average should land within a
        // factor-4 band of the paper's ~0.14 µA/gate.
        let lib = library();
        let n = benchmark("c432").unwrap();
        let avg = random_average_leakage(&n, &lib, 500, 7).unwrap();
        let per_gate = avg.as_micro_amps() / n.num_gates() as f64;
        assert!(
            (0.035..0.56).contains(&per_gate),
            "per-gate average {per_gate} µA"
        );
    }

    #[test]
    fn gate_share_matches_paper_claim() {
        // Paper §2: gate leakage ≈ 36% of the total at room temperature for
        // the fast corner. Our calibrated model should land in a 25-45%
        // band across circuits.
        let lib = library();
        for name in ["c432", "c880"] {
            let n = benchmark(name).unwrap();
            let avg = random_average_leakage(&n, &lib, 300, 5).unwrap();
            let share = avg.igate_share();
            assert!(
                (0.25..0.45).contains(&share),
                "{name}: igate share {share:.2}"
            );
            assert!(
                (avg.isub + avg.igate - avg.total).abs() < 1e-9,
                "components must sum"
            );
        }
    }

    #[test]
    fn parallel_estimate_is_thread_count_invariant() {
        let lib = library();
        let n = benchmark("c432").unwrap();
        // 600 vectors → 3 chunks (one ragged), so the work actually splits
        // and the tail mask is exercised under parallelism.
        let serial = random_average_leakage(&n, &lib, 600, 9).unwrap();
        for threads in [2, 4, 8] {
            let par = random_average_leakage_parallel(
                &n,
                &lib,
                600,
                9,
                &ExecConfig::with_threads(threads),
                Obs::disabled_ref(),
            )
            .unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn batch_entries_match_single_vector_calls_bit_identically() {
        let lib = library();
        let n = benchmark("c432").unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        // 100 vectors → one full word plus a 36-lane ragged tail.
        let vectors: Vec<Vec<bool>> = (0..100)
            .map(|_| (0..n.num_inputs()).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let batch = vector_leakage_batch(&n, &lib, &vectors).unwrap();
        assert_eq!(batch.len(), vectors.len());
        for (vector, &totals) in vectors.iter().zip(&batch) {
            assert_eq!(totals, vector_leakage(&n, &lib, vector).unwrap());
        }
    }

    #[test]
    fn packed_counters_are_exact_and_thread_count_invariant() {
        let lib = library();
        let n = benchmark("c432").unwrap();
        let mut snapshots = Vec::new();
        for threads in [1usize, 4] {
            let obs = Obs::enabled();
            random_average_leakage_parallel(
                &n,
                &lib,
                300,
                5,
                &ExecConfig::with_threads(threads),
                &obs,
            )
            .unwrap();
            let counters = obs.counter_snapshot();
            assert_eq!(counters.get("sim.vectors_sampled"), Some(&300));
            // 300 vectors = 4 full words + one 44-lane tail word.
            assert_eq!(counters.get("sim.packed.words"), Some(&5));
            assert_eq!(
                counters.get("sim.packed.gate_evals"),
                Some(&(5 * n.num_gates() as u64))
            );
            assert_eq!(counters.get("sim.packed.lanes_masked"), Some(&20));
            snapshots.push(counters);
        }
        let sim_only = |m: &std::collections::BTreeMap<String, u64>| {
            m.iter()
                .filter(|(k, _)| k.starts_with("sim."))
                .map(|(k, v)| (k.clone(), *v))
                .collect::<Vec<_>>()
        };
        assert_eq!(sim_only(&snapshots[0]), sim_only(&snapshots[1]));
    }

    #[test]
    fn more_vectors_converge() {
        let lib = library();
        let n = benchmark("c432").unwrap();
        let a = random_average_leakage(&n, &lib, 400, 11).unwrap().total;
        let b = random_average_leakage(&n, &lib, 400, 13).unwrap().total;
        let rel = (a.value() - b.value()).abs() / a.value();
        assert!(rel < 0.05, "two 400-vector estimates differ by {rel}");
    }

    /// The scalar reference must keep producing the exact pre-packed
    /// numbers: these f64 bit patterns were captured from the original
    /// scalar implementation before the word-level path landed.
    #[cfg(feature = "scalar-ref")]
    #[test]
    fn scalar_reference_estimates_are_pinned() {
        let lib = library();
        let cases: [(&str, usize, u64, u64, u64); 4] = [
            (
                "c432",
                500,
                42,
                0x40df_5e9f_bdc7_083f,
                0x40d0_e1cf_e148_b0d3,
            ),
            ("c432", 300, 5, 0x40df_691e_f412_474f, 0x40d0_ec3b_a213_7b83),
            ("c880", 300, 5, 0x40f0_0885_b28e_8571, 0x40e0_abab_4d59_bc8d),
            ("c432", 100, 7, 0x40df_415e_d669_f81c, 0x40d0_f6b1_09a0_d189),
        ];
        for (name, vectors, seed, isub_bits, igate_bits) in cases {
            let n = benchmark(name).unwrap();
            let avg = random_average_leakage_scalar(&n, &lib, vectors, seed).unwrap();
            assert_eq!(
                avg.isub.value().to_bits(),
                isub_bits,
                "{name}/{vectors}/{seed} isub"
            );
            assert_eq!(
                avg.igate.value().to_bits(),
                igate_bits,
                "{name}/{vectors}/{seed} igate"
            );
        }
    }

    #[cfg(feature = "scalar-ref")]
    #[test]
    fn scalar_parallel_estimate_is_thread_count_invariant() {
        let lib = library();
        let n = benchmark("c432").unwrap();
        let serial = random_average_leakage_scalar(&n, &lib, 600, 9).unwrap();
        for threads in [2, 4, 8] {
            let par = random_average_leakage_scalar_parallel(
                &n,
                &lib,
                600,
                9,
                &ExecConfig::with_threads(threads),
                Obs::disabled_ref(),
            )
            .unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    /// The packed path deliberately uses a different draw contract, so the
    /// two estimators agree statistically but not bit-for-bit.
    #[cfg(feature = "scalar-ref")]
    #[test]
    fn packed_and_scalar_estimates_agree_statistically() {
        let lib = library();
        let n = benchmark("c432").unwrap();
        let packed = random_average_leakage(&n, &lib, 500, 42).unwrap();
        let scalar = random_average_leakage_scalar(&n, &lib, 500, 42).unwrap();
        assert_ne!(packed, scalar, "draw contracts are distinct by design");
        let rel = (packed.total.value() - scalar.total.value()).abs() / scalar.total.value();
        assert!(rel < 0.05, "packed vs scalar differ by {rel}");
    }
}
