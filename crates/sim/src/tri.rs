//! Three-valued event-driven simulation for partial standby vectors.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use svtox_cells::InputState;
use svtox_netlist::{GateId, GateKind, NetId, Netlist};

use crate::logic::Logic;

/// Three-valued, event-driven simulator.
///
/// The state-tree search decides primary inputs one at a time; undecided
/// inputs are `X`. For every gate, the simulator can enumerate the input
/// states still reachable ([`TriSimulator::possible_states`]), which the
/// optimizer turns into leakage lower/upper bounds for pruning.
#[derive(Debug, Clone)]
pub struct TriSimulator<'a> {
    netlist: &'a Netlist,
    net_values: Vec<Logic>,
    queued: Vec<bool>,
}

impl<'a> TriSimulator<'a> {
    /// Creates a simulator with every primary input undecided.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        let mut sim = Self {
            netlist,
            net_values: vec![Logic::X; netlist.num_nets()],
            queued: vec![false; netlist.num_gates()],
        };
        sim.full_eval();
        sim
    }

    /// The netlist under simulation.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Number of primary inputs still undecided.
    #[must_use]
    pub fn num_undecided(&self) -> usize {
        self.netlist
            .inputs()
            .iter()
            .filter(|&&pi| self.net_values[pi.index()] == Logic::X)
            .count()
    }

    /// Sets one primary input (by position) to a three-valued level,
    /// propagating only the affected cone. Returns the number of gates
    /// re-evaluated.
    ///
    /// # Panics
    ///
    /// Panics if `input_index` is out of range.
    pub fn set_input(&mut self, input_index: usize, value: Logic) -> usize {
        let pi = self.netlist.inputs()[input_index];
        if self.net_values[pi.index()] == value {
            return 0;
        }
        self.net_values[pi.index()] = value;
        let mut heap: BinaryHeap<Reverse<(u32, GateId)>> = BinaryHeap::new();
        for &(g, _pin) in self.netlist.net(pi).fanouts() {
            if !self.queued[g.index()] {
                self.queued[g.index()] = true;
                heap.push(Reverse((self.netlist.level(g), g)));
            }
        }
        let mut evaluated = 0;
        // Stack scratch (arity-bounded): deciding an input never allocates,
        // which matters because the state search calls this at every node.
        let mut ins = [Logic::X; GateKind::MAX_ARITY];
        while let Some(Reverse((_lvl, gate_id))) = heap.pop() {
            self.queued[gate_id.index()] = false;
            evaluated += 1;
            let gate = self.netlist.gate(gate_id);
            let pins = gate.inputs();
            for (slot, &n) in ins.iter_mut().zip(pins) {
                *slot = self.net_values[n.index()];
            }
            let new = Logic::eval_gate(gate.kind(), &ins[..pins.len()]);
            let out = gate.output();
            if self.net_values[out.index()] != new {
                self.net_values[out.index()] = new;
                for &(g, _pin) in self.netlist.net(out).fanouts() {
                    if !self.queued[g.index()] {
                        self.queued[g.index()] = true;
                        heap.push(Reverse((self.netlist.level(g), g)));
                    }
                }
            }
        }
        evaluated
    }

    /// Resets every primary input to undecided.
    pub fn clear(&mut self) {
        for v in &mut self.net_values {
            *v = Logic::X;
        }
        self.full_eval();
    }

    /// The value of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    #[must_use]
    pub fn value(&self, net: NetId) -> Logic {
        self.net_values[net.index()]
    }

    /// The three-valued input levels of a gate, in logical pin order.
    ///
    /// # Panics
    ///
    /// Panics if the gate id is out of range.
    #[must_use]
    pub fn gate_levels(&self, gate: GateId) -> Vec<Logic> {
        self.netlist
            .gate(gate)
            .inputs()
            .iter()
            .map(|&n| self.net_values[n.index()])
            .collect()
    }

    /// Enumerates the input states a gate can still assume given the
    /// decided inputs: the Cartesian expansion of its `X` pins.
    ///
    /// Note this is a (tight, cheap) superset of the truly reachable
    /// states — correlations between `X` nets are ignored, which is the
    /// safe direction for bounding.
    #[must_use]
    pub fn possible_states(&self, gate: GateId) -> Vec<InputState> {
        let levels = self.gate_levels(gate);
        let free: Vec<usize> = levels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == Logic::X)
            .map(|(i, _)| i)
            .collect();
        let mut base: u16 = 0;
        for (i, &l) in levels.iter().enumerate() {
            if l == Logic::One {
                base |= 1 << i;
            }
        }
        (0..(1u32 << free.len()))
            .map(|combo| {
                let mut bits = base;
                for (k, &pin) in free.iter().enumerate() {
                    if combo >> k & 1 == 1 {
                        bits |= 1 << pin;
                    }
                }
                InputState::from_bits(bits, levels.len())
            })
            .collect()
    }

    fn full_eval(&mut self) {
        let mut ins = [Logic::X; GateKind::MAX_ARITY];
        for &gid in self.netlist.topo_order() {
            let gate = self.netlist.gate(gid);
            let pins = gate.inputs();
            for (slot, &n) in ins.iter_mut().zip(pins) {
                *slot = self.net_values[n.index()];
            }
            self.net_values[gate.output().index()] =
                Logic::eval_gate(gate.kind(), &ins[..pins.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two::Simulator;
    use svtox_netlist::generators::{random_dag, RandomDagSpec};
    use svtox_netlist::{GateKind, NetlistBuilder};

    fn toy() -> Netlist {
        let mut b = NetlistBuilder::new("toy");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let nb = b.add_gate(GateKind::Inv, &[c]).unwrap();
        let y = b.add_gate(GateKind::Nand(2), &[a, nb]).unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn starts_all_unknown() {
        let n = toy();
        let sim = TriSimulator::new(&n);
        assert_eq!(sim.num_undecided(), 2);
        for (nid, _) in n.nets() {
            assert_eq!(sim.value(nid), Logic::X);
        }
    }

    #[test]
    fn controlling_input_decides_cone() {
        let n = toy();
        let mut sim = TriSimulator::new(&n);
        // a=0 forces the NAND to 1 even though b is unknown.
        sim.set_input(0, Logic::Zero);
        let y = n.outputs()[0];
        assert_eq!(sim.value(y), Logic::One);
        assert_eq!(sim.num_undecided(), 1);
    }

    #[test]
    fn agrees_with_two_valued_when_fully_decided() {
        let spec = RandomDagSpec::new("tri-test", 16, 6, 200, 10);
        let n = random_dag(&spec).unwrap();
        let mut tri = TriSimulator::new(&n);
        let mut two = Simulator::new(&n);
        let vector: Vec<bool> = (0..n.num_inputs()).map(|i| i % 3 == 0).collect();
        two.set_inputs(&vector);
        for (i, &v) in vector.iter().enumerate() {
            tri.set_input(i, Logic::from(v));
        }
        assert_eq!(tri.num_undecided(), 0);
        for (nid, _) in n.nets() {
            assert_eq!(tri.value(nid).to_bool(), Some(two.value(nid)));
        }
    }

    #[test]
    fn possible_states_cover_actual_state() {
        let spec = RandomDagSpec::new("tri-cover", 12, 4, 120, 8);
        let n = random_dag(&spec).unwrap();
        let mut tri = TriSimulator::new(&n);
        // Decide half the inputs.
        for i in 0..n.num_inputs() / 2 {
            tri.set_input(i, Logic::from(i % 2 == 0));
        }
        // Complete the vector in a two-valued simulator.
        let mut two = Simulator::new(&n);
        let vector: Vec<bool> = (0..n.num_inputs())
            .map(|i| {
                if i < n.num_inputs() / 2 {
                    i % 2 == 0
                } else {
                    true
                }
            })
            .collect();
        two.set_inputs(&vector);
        for (gid, _) in n.gates() {
            let actual = two.gate_state(gid);
            let possible = tri.possible_states(gid);
            assert!(
                possible.contains(&actual),
                "gate {gid}: state {actual} not in possible set"
            );
        }
    }

    #[test]
    fn possible_states_shrink_as_inputs_decide() {
        let n = toy();
        let mut sim = TriSimulator::new(&n);
        let nand = n.topo_order()[1];
        assert_eq!(sim.possible_states(nand).len(), 4);
        sim.set_input(0, Logic::One);
        assert_eq!(sim.possible_states(nand).len(), 2);
        sim.set_input(1, Logic::Zero);
        assert_eq!(sim.possible_states(nand).len(), 1);
    }

    #[test]
    fn clear_resets() {
        let n = toy();
        let mut sim = TriSimulator::new(&n);
        sim.set_input(0, Logic::One);
        sim.set_input(1, Logic::Zero);
        sim.clear();
        assert_eq!(sim.num_undecided(), 2);
    }

    #[test]
    fn undoing_an_input_works_via_x() {
        let n = toy();
        let mut sim = TriSimulator::new(&n);
        let y = n.outputs()[0];
        sim.set_input(0, Logic::Zero);
        assert_eq!(sim.value(y), Logic::One);
        sim.set_input(0, Logic::X);
        assert_eq!(sim.value(y), Logic::X);
    }
}
