//! Two-valued event-driven simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use svtox_cells::InputState;
use svtox_netlist::{GateId, GateKind, NetId, Netlist};

/// Two-valued, event-driven logic simulator.
///
/// Construction evaluates the netlist with all inputs at 0. Full vectors go
/// through [`Simulator::set_inputs`]; the state-tree search uses
/// [`Simulator::set_input`] to flip one primary input and re-evaluate only
/// the affected cone in level order.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    net_values: Vec<bool>,
    /// Scratch: whether a gate is already queued during propagation.
    queued: Vec<bool>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator and evaluates the all-zero input vector.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        let mut sim = Self {
            netlist,
            net_values: vec![false; netlist.num_nets()],
            queued: vec![false; netlist.num_gates()],
        };
        sim.full_eval();
        sim
    }

    /// The netlist under simulation.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Sets the entire input vector and re-evaluates everything.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the input count.
    pub fn set_inputs(&mut self, values: &[bool]) {
        assert_eq!(
            values.len(),
            self.netlist.num_inputs(),
            "input vector length"
        );
        for (&pi, &v) in self.netlist.inputs().iter().zip(values) {
            self.net_values[pi.index()] = v;
        }
        self.full_eval();
    }

    /// Flips one primary input (by position in [`Netlist::inputs`]) to a
    /// value, propagating events through the fanout cone only. Returns the
    /// number of gates re-evaluated.
    ///
    /// # Panics
    ///
    /// Panics if `input_index` is out of range.
    pub fn set_input(&mut self, input_index: usize, value: bool) -> usize {
        let pi = self.netlist.inputs()[input_index];
        if self.net_values[pi.index()] == value {
            return 0;
        }
        self.net_values[pi.index()] = value;
        // Min-heap on (level, gate) so each gate is evaluated after all its
        // updated fanins.
        let mut heap: BinaryHeap<Reverse<(u32, GateId)>> = BinaryHeap::new();
        for &(g, _pin) in self.netlist.net(pi).fanouts() {
            if !self.queued[g.index()] {
                self.queued[g.index()] = true;
                heap.push(Reverse((self.netlist.level(g), g)));
            }
        }
        let mut evaluated = 0;
        // Scratch lives on the stack (arity is bounded), so a flip never
        // touches the allocator no matter how big the fanout cone is.
        let mut ins = [false; GateKind::MAX_ARITY];
        while let Some(Reverse((_lvl, gate_id))) = heap.pop() {
            self.queued[gate_id.index()] = false;
            evaluated += 1;
            let gate = self.netlist.gate(gate_id);
            let pins = gate.inputs();
            for (slot, &n) in ins.iter_mut().zip(pins) {
                *slot = self.net_values[n.index()];
            }
            let new = gate.kind().eval(&ins[..pins.len()]);
            let out = gate.output();
            if self.net_values[out.index()] != new {
                self.net_values[out.index()] = new;
                for &(g, _pin) in self.netlist.net(out).fanouts() {
                    if !self.queued[g.index()] {
                        self.queued[g.index()] = true;
                        heap.push(Reverse((self.netlist.level(g), g)));
                    }
                }
            }
        }
        evaluated
    }

    /// The value of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    #[must_use]
    pub fn value(&self, net: NetId) -> bool {
        self.net_values[net.index()]
    }

    /// The primary-output values in declaration order.
    #[must_use]
    pub fn output_values(&self) -> Vec<bool> {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.net_values[o.index()])
            .collect()
    }

    /// The input state of a gate (logical pin order). Allocation-free: the
    /// pin values fold directly into the state bitmask.
    ///
    /// # Panics
    ///
    /// Panics if the gate id is out of range.
    #[must_use]
    pub fn gate_state(&self, gate: GateId) -> InputState {
        let pins = self.netlist.gate(gate).inputs();
        let bits = pins.iter().enumerate().fold(0u16, |acc, (i, &n)| {
            acc | (u16::from(self.net_values[n.index()]) << i)
        });
        InputState::from_bits(bits, pins.len())
    }

    fn full_eval(&mut self) {
        let mut ins = [false; GateKind::MAX_ARITY];
        for &gid in self.netlist.topo_order() {
            let gate = self.netlist.gate(gid);
            let pins = gate.inputs();
            for (slot, &n) in ins.iter_mut().zip(pins) {
                *slot = self.net_values[n.index()];
            }
            self.net_values[gate.output().index()] = gate.kind().eval(&ins[..pins.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svtox_exec::rng::Xoshiro256pp;
    use svtox_netlist::generators::{benchmark, random_dag, RandomDagSpec};
    use svtox_netlist::{GateKind, NetlistBuilder};

    fn toy() -> Netlist {
        let mut b = NetlistBuilder::new("toy");
        let a = b.add_input("a");
        let c = b.add_input("b");
        let nb = b.add_gate(GateKind::Inv, &[c]).unwrap();
        let y = b.add_gate(GateKind::Nand(2), &[a, nb]).unwrap();
        b.mark_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn matches_reference_evaluation() {
        let n = toy();
        let mut sim = Simulator::new(&n);
        for bits in 0..4u32 {
            let v: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            sim.set_inputs(&v);
            assert_eq!(sim.output_values(), n.evaluate(&v), "vector {bits:b}");
        }
    }

    #[test]
    fn incremental_matches_full_on_random_dag() {
        let spec = RandomDagSpec::new("sim-test", 24, 8, 300, 14);
        let n = random_dag(&spec).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut vector = vec![false; n.num_inputs()];
        let mut sim = Simulator::new(&n);
        let mut reference = Simulator::new(&n);
        for _ in 0..200 {
            let i = rng.gen_index(vector.len());
            vector[i] = !vector[i];
            sim.set_input(i, vector[i]);
            reference.set_inputs(&vector);
            for (nid, _) in n.nets() {
                assert_eq!(sim.value(nid), reference.value(nid));
            }
        }
    }

    #[test]
    fn flip_to_same_value_is_free() {
        let n = toy();
        let mut sim = Simulator::new(&n);
        assert_eq!(sim.set_input(0, false), 0);
        assert!(sim.set_input(0, true) > 0);
    }

    #[test]
    fn gate_states_follow_inputs() {
        let n = toy();
        let mut sim = Simulator::new(&n);
        sim.set_inputs(&[true, false]);
        // The NAND sees a=1 and INV(b)=1.
        let nand = n.topo_order()[1];
        assert_eq!(sim.gate_state(nand).bits(), 0b11);
        sim.set_input(1, true);
        assert_eq!(sim.gate_state(nand).bits(), 0b01);
    }

    #[test]
    fn event_driven_touches_only_the_cone() {
        // On a benchmark circuit, flipping one input must evaluate fewer
        // gates than the whole netlist (on average).
        let n = benchmark("c880").unwrap();
        let mut sim = Simulator::new(&n);
        let mut total = 0usize;
        for i in 0..n.num_inputs() {
            total += sim.set_input(i, true);
        }
        let avg = total as f64 / n.num_inputs() as f64;
        assert!(
            avg < n.num_gates() as f64 * 0.6,
            "avg cone {avg} vs {} gates",
            n.num_gates()
        );
    }
}
