//! Bit-parallel word-level simulation: 64 input vectors per machine word.
//!
//! The scalar simulators in this crate evaluate one vector at a time; every
//! Monte-Carlo baseline, state-search leaf, and differential oracle pays the
//! full DAG sweep per vector. Here a net holds a *word plane* instead of a
//! single value — bit `l` of the `u64` is the net's value under vector
//! (lane) `l` — so one topological sweep with bitwise ops evaluates up to
//! [`LANES`] vectors at once.
//!
//! Two engines share the plane layout:
//!
//! * [`PackedSimulator`] — two-valued. One `u64` per net; gate formulas are
//!   the obvious AND/OR/XOR word ops.
//! * [`PackedTriSimulator`] — three-valued, preserving [`TriSimulator`]
//!   semantics exactly. Each net carries two planes, a *value* plane and an
//!   *X-mask* plane, in canonical form: an `X` bit forces the value bit to
//!   `0`. The per-gate formulas below are derived from (and tested
//!   exhaustively against) [`Logic::eval_gate`]'s controlling-value
//!   semantics.
//!
//! # Lane order and tail masking
//!
//! Bit `l` (LSB first) of every plane is lane `l`. A batch of `n < 64`
//! vectors occupies lanes `0..n`; the remaining lanes simulate the all-zero
//! vector and MUST be ignored by consumers — [`PackedVec::active_mask`]
//! gives the valid-lane mask. Masking happens at *consumption* (leakage
//! accumulation, lane extraction), never inside the sweep, so the sweep
//! itself is branch-free.
//!
//! [`TriSimulator`]: crate::TriSimulator

use svtox_cells::InputState;
use svtox_exec::rng::Xoshiro256pp;
use svtox_netlist::{GateId, GateKind, NetId, Netlist};

use crate::logic::Logic;

/// Vectors per word plane: one lane per bit of a `u64`.
pub const LANES: usize = 64;

/// A packed block of up to [`LANES`] input vectors in SoA layout: one `u64`
/// per primary input, bit `l` = input value under lane `l`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedVec {
    words: Vec<u64>,
    lanes: usize,
}

impl PackedVec {
    /// Packs explicit vectors (at most [`LANES`]); vector `l` becomes
    /// lane `l`. Inactive lanes are zero.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty, holds more than [`LANES`] entries, or
    /// the vectors have differing lengths.
    #[must_use]
    pub fn from_vectors(vectors: &[Vec<bool>]) -> Self {
        assert!(!vectors.is_empty(), "need at least one vector");
        assert!(vectors.len() <= LANES, "at most {LANES} vectors per word");
        let num_inputs = vectors[0].len();
        let mut words = vec![0u64; num_inputs];
        for (lane, vector) in vectors.iter().enumerate() {
            assert_eq!(vector.len(), num_inputs, "ragged vector lengths");
            for (word, &v) in words.iter_mut().zip(vector) {
                *word |= u64::from(v) << lane;
            }
        }
        Self {
            words,
            lanes: vectors.len(),
        }
    }

    /// Packs a single vector into lane 0 (the broadcast form the state
    /// search uses for its per-leaf gate-state extraction).
    #[must_use]
    pub fn broadcast(vector: &[bool]) -> Self {
        let words = vector.iter().map(|&v| u64::from(v)).collect();
        Self { words, lanes: 1 }
    }

    /// Fills a full word (all [`LANES`] lanes) from the PRNG stream: one
    /// [`Xoshiro256pp::next_u64`] per input, in input order. Bit `l` of the
    /// draw for input `i` is the value of input `i` under lane `l`.
    ///
    /// This is the packed sampling contract: a word block consumes exactly
    /// `num_inputs` draws regardless of how many lanes the caller will
    /// keep, so a ragged tail does not shift the stream.
    #[must_use]
    pub fn fill_from_rng(num_inputs: usize, rng: &mut Xoshiro256pp) -> Self {
        let words = (0..num_inputs).map(|_| rng.next_u64()).collect();
        Self {
            words,
            lanes: LANES,
        }
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.words.len()
    }

    /// Number of active lanes (1..=[`LANES`]).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Mask with a bit set for every active lane.
    #[must_use]
    pub fn active_mask(&self) -> u64 {
        if self.lanes == LANES {
            u64::MAX
        } else {
            (1u64 << self.lanes) - 1
        }
    }

    /// The word plane of one input.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    #[must_use]
    pub fn word(&self, input: usize) -> u64 {
        self.words[input]
    }

    /// The value of `input` under lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    #[must_use]
    pub fn get(&self, input: usize, lane: usize) -> bool {
        debug_assert!(lane < LANES);
        self.words[input] >> lane & 1 == 1
    }
}

/// A packed block of up to [`LANES`] three-valued vectors: a value plane
/// and an X-mask plane per input, canonical (`x` bit set ⇒ value bit 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTriVec {
    value: Vec<u64>,
    xmask: Vec<u64>,
    lanes: usize,
}

impl PackedTriVec {
    /// Packs explicit three-valued vectors; vector `l` becomes lane `l`.
    /// Inactive lanes are known-zero.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty, holds more than [`LANES`] entries, or
    /// the vectors have differing lengths.
    #[must_use]
    pub fn from_logic_vectors(vectors: &[Vec<Logic>]) -> Self {
        assert!(!vectors.is_empty(), "need at least one vector");
        assert!(vectors.len() <= LANES, "at most {LANES} vectors per word");
        let num_inputs = vectors[0].len();
        let mut value = vec![0u64; num_inputs];
        let mut xmask = vec![0u64; num_inputs];
        for (lane, vector) in vectors.iter().enumerate() {
            assert_eq!(vector.len(), num_inputs, "ragged vector lengths");
            for (i, &l) in vector.iter().enumerate() {
                match l {
                    Logic::One => value[i] |= 1 << lane,
                    Logic::X => xmask[i] |= 1 << lane,
                    Logic::Zero => {}
                }
            }
        }
        Self {
            value,
            xmask,
            lanes: vectors.len(),
        }
    }

    /// Packs a single three-valued vector into lane 0.
    #[must_use]
    pub fn broadcast(vector: &[Logic]) -> Self {
        let value = vector.iter().map(|&l| u64::from(l == Logic::One)).collect();
        let xmask = vector.iter().map(|&l| u64::from(l == Logic::X)).collect();
        Self {
            value,
            xmask,
            lanes: 1,
        }
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.value.len()
    }

    /// Number of active lanes (1..=[`LANES`]).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }
}

/// Evaluates one gate over two-valued word planes (bit `l` = lane `l`).
///
/// # Panics
///
/// Panics if `ins.len() != kind.arity()`.
#[must_use]
pub fn eval_word(kind: GateKind, ins: &[u64]) -> u64 {
    assert_eq!(ins.len(), kind.arity(), "arity mismatch for {kind}");
    match kind {
        GateKind::Inv => !ins[0],
        GateKind::Buf => ins[0],
        GateKind::And(_) => ins.iter().fold(u64::MAX, |acc, &w| acc & w),
        GateKind::Nand(_) => !ins.iter().fold(u64::MAX, |acc, &w| acc & w),
        GateKind::Or(_) => ins.iter().fold(0, |acc, &w| acc | w),
        GateKind::Nor(_) => !ins.iter().fold(0, |acc, &w| acc | w),
        GateKind::Xor2 => ins[0] ^ ins[1],
        GateKind::Xnor2 => !(ins[0] ^ ins[1]),
    }
}

/// Evaluates one gate over three-valued dual planes, returning the
/// `(value, xmask)` planes of the output in canonical form.
///
/// The formulas mirror [`Logic::eval_gate`]'s controlling-value semantics
/// per lane: an AND-family output is known-0 when any input lane is
/// known-0 (`!(v | x)`), known-1 when all lanes are known-1 (`v`, thanks
/// to the canonical encoding), and X otherwise; the OR family is dual; XOR
/// is X as soon as either input is.
///
/// # Panics
///
/// Panics if the input slices disagree with `kind.arity()`.
#[must_use]
pub fn eval_word_tri(kind: GateKind, ins_v: &[u64], ins_x: &[u64]) -> (u64, u64) {
    assert_eq!(ins_v.len(), kind.arity(), "arity mismatch for {kind}");
    assert_eq!(ins_x.len(), kind.arity(), "arity mismatch for {kind}");
    let and_like = || {
        // Lane is known-1 on a pin iff v; known-0 iff !(v|x).
        let all_one = ins_v.iter().fold(u64::MAX, |acc, &v| acc & v);
        let any_zero = !ins_v
            .iter()
            .zip(ins_x)
            .fold(u64::MAX, |acc, (&v, &x)| acc & (v | x));
        (all_one, any_zero)
    };
    let or_like = || {
        let any_one = ins_v.iter().fold(0, |acc, &v| acc | v);
        let all_zero = !ins_v.iter().zip(ins_x).fold(0, |acc, (&v, &x)| acc | v | x);
        (any_one, all_zero)
    };
    match kind {
        GateKind::Inv => {
            let (v, x) = (ins_v[0], ins_x[0]);
            (!(v | x), x)
        }
        GateKind::Buf => (ins_v[0], ins_x[0]),
        GateKind::And(_) => {
            let (all_one, any_zero) = and_like();
            (all_one, !(all_one | any_zero))
        }
        GateKind::Nand(_) => {
            let (all_one, any_zero) = and_like();
            (any_zero, !(all_one | any_zero))
        }
        GateKind::Or(_) => {
            let (any_one, all_zero) = or_like();
            (any_one, !(any_one | all_zero))
        }
        GateKind::Nor(_) => {
            let (any_one, all_zero) = or_like();
            (all_zero, !(any_one | all_zero))
        }
        GateKind::Xor2 | GateKind::Xnor2 => {
            let x = ins_x[0] | ins_x[1];
            let v = ins_v[0] ^ ins_v[1];
            let v = if kind == GateKind::Xnor2 { !v } else { v };
            (v & !x, x)
        }
    }
}

/// Two-valued word-level simulator: one `u64` plane per net, full
/// topological sweep per input block.
///
/// There is no event-driven path — with 64 lanes per sweep the full
/// re-evaluation is already amortized, and a branch-free sweep vectorizes.
#[derive(Debug, Clone)]
pub struct PackedSimulator<'a> {
    netlist: &'a Netlist,
    words: Vec<u64>,
}

impl<'a> PackedSimulator<'a> {
    /// Creates a simulator and evaluates the all-zero block.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        let mut sim = Self {
            netlist,
            words: vec![0; netlist.num_nets()],
        };
        sim.full_eval();
        sim
    }

    /// Creates a simulator directly on an input block (one sweep, not the
    /// two a `new` + `set_inputs` pair would do).
    ///
    /// # Panics
    ///
    /// Panics if the block's input count differs from the netlist's.
    #[must_use]
    pub fn with_inputs(netlist: &'a Netlist, inputs: &PackedVec) -> Self {
        let mut sim = Self {
            netlist,
            words: vec![0; netlist.num_nets()],
        };
        sim.set_inputs(inputs);
        sim
    }

    /// The netlist under simulation.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Loads an input block and re-evaluates every gate.
    ///
    /// # Panics
    ///
    /// Panics if the block's input count differs from the netlist's.
    pub fn set_inputs(&mut self, inputs: &PackedVec) {
        assert_eq!(
            inputs.num_inputs(),
            self.netlist.num_inputs(),
            "input block width"
        );
        for (i, &pi) in self.netlist.inputs().iter().enumerate() {
            self.words[pi.index()] = inputs.word(i);
        }
        self.full_eval();
    }

    /// The word plane of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    #[must_use]
    pub fn word(&self, net: NetId) -> u64 {
        self.words[net.index()]
    }

    /// The value of a net under one lane.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    #[must_use]
    pub fn lane(&self, net: NetId, lane: usize) -> bool {
        debug_assert!(lane < LANES);
        self.words[net.index()] >> lane & 1 == 1
    }

    /// The input state of a gate under one lane (logical pin order).
    ///
    /// Allocation-free: the pins fold directly into the state bitmask.
    ///
    /// # Panics
    ///
    /// Panics if the gate id is out of range.
    #[must_use]
    pub fn gate_state(&self, gate: GateId, lane: usize) -> InputState {
        let pins = self.netlist.gate(gate).inputs();
        let bits = pins.iter().enumerate().fold(0u16, |acc, (i, &n)| {
            acc | (u16::from(self.words[n.index()] >> lane & 1 == 1) << i)
        });
        InputState::from_bits(bits, pins.len())
    }

    fn full_eval(&mut self) {
        let mut ins = [0u64; GateKind::MAX_ARITY];
        for &gid in self.netlist.topo_order() {
            let gate = self.netlist.gate(gid);
            let pins = gate.inputs();
            for (slot, &n) in ins.iter_mut().zip(pins) {
                *slot = self.words[n.index()];
            }
            self.words[gate.output().index()] = eval_word(gate.kind(), &ins[..pins.len()]);
        }
    }
}

/// Three-valued word-level simulator: a value plane and an X-mask plane
/// per net, canonical form throughout (an X bit forces the value bit 0).
///
/// Lane-for-lane equal to [`TriSimulator`](crate::TriSimulator) — the
/// scalar engine is the ground truth the packed formulas are tested
/// against.
#[derive(Debug, Clone)]
pub struct PackedTriSimulator<'a> {
    netlist: &'a Netlist,
    value: Vec<u64>,
    xmask: Vec<u64>,
}

impl<'a> PackedTriSimulator<'a> {
    /// Creates a simulator with every primary input undecided (all lanes
    /// X), matching `TriSimulator::new`.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        let mut sim = Self {
            netlist,
            value: vec![0; netlist.num_nets()],
            xmask: vec![0; netlist.num_nets()],
        };
        for &pi in netlist.inputs() {
            sim.xmask[pi.index()] = u64::MAX;
        }
        sim.full_eval();
        sim
    }

    /// The netlist under simulation.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Loads a three-valued input block and re-evaluates every gate.
    ///
    /// # Panics
    ///
    /// Panics if the block's input count differs from the netlist's.
    pub fn set_inputs(&mut self, inputs: &PackedTriVec) {
        assert_eq!(
            inputs.num_inputs(),
            self.netlist.num_inputs(),
            "input block width"
        );
        for (i, &pi) in self.netlist.inputs().iter().enumerate() {
            self.value[pi.index()] = inputs.value[i];
            self.xmask[pi.index()] = inputs.xmask[i];
        }
        self.full_eval();
    }

    /// The `(value, xmask)` planes of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    #[must_use]
    pub fn planes(&self, net: NetId) -> (u64, u64) {
        (self.value[net.index()], self.xmask[net.index()])
    }

    /// The three-valued level of a net under one lane.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    #[must_use]
    pub fn lane(&self, net: NetId, lane: usize) -> Logic {
        debug_assert!(lane < LANES);
        if self.xmask[net.index()] >> lane & 1 == 1 {
            Logic::X
        } else if self.value[net.index()] >> lane & 1 == 1 {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    fn full_eval(&mut self) {
        let mut ins_v = [0u64; GateKind::MAX_ARITY];
        let mut ins_x = [0u64; GateKind::MAX_ARITY];
        for &gid in self.netlist.topo_order() {
            let gate = self.netlist.gate(gid);
            let pins = gate.inputs();
            for (i, &n) in pins.iter().enumerate() {
                ins_v[i] = self.value[n.index()];
                ins_x[i] = self.xmask[n.index()];
            }
            let (v, x) = eval_word_tri(gate.kind(), &ins_v[..pins.len()], &ins_x[..pins.len()]);
            self.value[gate.output().index()] = v;
            self.xmask[gate.output().index()] = x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tri::TriSimulator;
    use crate::two::Simulator;
    use svtox_netlist::generators::{random_dag, RandomDagSpec};

    /// Every gate kind at every supported arity.
    fn all_kinds() -> Vec<GateKind> {
        let mut kinds = vec![
            GateKind::Inv,
            GateKind::Buf,
            GateKind::Xor2,
            GateKind::Xnor2,
        ];
        for n in 2..=GateKind::MAX_ARITY as u8 {
            kinds.extend([
                GateKind::And(n),
                GateKind::Nand(n),
                GateKind::Or(n),
                GateKind::Nor(n),
            ]);
        }
        kinds
    }

    /// Exhaustive two-valued truth tables: every input combination of every
    /// kind, packed 64 combinations per word, must match `GateKind::eval`.
    #[test]
    fn packed_two_valued_truth_tables_are_exhaustive() {
        for kind in all_kinds() {
            let arity = kind.arity();
            let combos = 1usize << arity;
            for base in (0..combos).step_by(LANES) {
                let lanes = (combos - base).min(LANES);
                // Word for pin i: bit l = bit i of combination (base + l).
                let mut ins = vec![0u64; arity];
                for lane in 0..lanes {
                    let combo = base + lane;
                    for (i, word) in ins.iter_mut().enumerate() {
                        *word |= (((combo >> i) & 1) as u64) << lane;
                    }
                }
                let out = eval_word(kind, &ins);
                for lane in 0..lanes {
                    let combo = base + lane;
                    let bools: Vec<bool> = (0..arity).map(|i| combo >> i & 1 == 1).collect();
                    assert_eq!(
                        out >> lane & 1 == 1,
                        kind.eval(&bools),
                        "{kind} combo {combo:b}"
                    );
                }
            }
        }
    }

    /// Exhaustive three-valued truth tables: every {0,1,X}^arity input
    /// combination, packed 64 per word, must match `Logic::eval_gate` —
    /// and the output planes must stay canonical (x bit ⇒ v bit 0).
    #[test]
    fn packed_tri_valued_truth_tables_are_exhaustive() {
        let levels = [Logic::Zero, Logic::One, Logic::X];
        for kind in all_kinds() {
            let arity = kind.arity();
            let combos = 3usize.pow(arity as u32);
            for base in (0..combos).step_by(LANES) {
                let lanes = (combos - base).min(LANES);
                let mut ins_v = vec![0u64; arity];
                let mut ins_x = vec![0u64; arity];
                for lane in 0..lanes {
                    let mut combo = base + lane;
                    for i in 0..arity {
                        match levels[combo % 3] {
                            Logic::One => ins_v[i] |= 1 << lane,
                            Logic::X => ins_x[i] |= 1 << lane,
                            Logic::Zero => {}
                        }
                        combo /= 3;
                    }
                }
                let (out_v, out_x) = eval_word_tri(kind, &ins_v, &ins_x);
                assert_eq!(out_v & out_x, 0, "{kind}: output planes not canonical");
                for lane in 0..lanes {
                    let mut combo = base + lane;
                    let tri: Vec<Logic> = (0..arity)
                        .map(|_| {
                            let l = levels[combo % 3];
                            combo /= 3;
                            l
                        })
                        .collect();
                    let expected = Logic::eval_gate(kind, &tri);
                    let got = if out_x >> lane & 1 == 1 {
                        Logic::X
                    } else if out_v >> lane & 1 == 1 {
                        Logic::One
                    } else {
                        Logic::Zero
                    };
                    assert_eq!(got, expected, "{kind} on {tri:?}");
                }
            }
        }
    }

    #[test]
    fn packed_vec_round_trips_and_masks() {
        let vectors: Vec<Vec<bool>> = (0..37)
            .map(|l| (0..5).map(|i| (l * 7 + i) % 3 == 0).collect())
            .collect();
        let pv = PackedVec::from_vectors(&vectors);
        assert_eq!(pv.lanes(), 37);
        assert_eq!(pv.num_inputs(), 5);
        assert_eq!(pv.active_mask(), (1u64 << 37) - 1);
        for (lane, vector) in vectors.iter().enumerate() {
            for (i, &v) in vector.iter().enumerate() {
                assert_eq!(pv.get(i, lane), v);
            }
        }
        let full = PackedVec::from_vectors(&vec![vec![true; 3]; LANES]);
        assert_eq!(full.active_mask(), u64::MAX);
        let one = PackedVec::broadcast(&[true, false, true]);
        assert_eq!(one.lanes(), 1);
        assert!(one.get(0, 0) && !one.get(1, 0) && one.get(2, 0));
    }

    #[test]
    fn packed_matches_scalar_on_random_dags() {
        for (seed, num_vectors) in [(3u64, 200usize), (11, 64), (17, 13)] {
            let spec = RandomDagSpec::new(format!("packed-{seed}"), 20, 7, 250, 12);
            let n = random_dag(&spec).unwrap();
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let mut scalar = Simulator::new(&n);
            let mut packed = PackedSimulator::new(&n);
            let mut remaining = num_vectors;
            while remaining > 0 {
                let lanes = remaining.min(LANES);
                let vectors: Vec<Vec<bool>> = (0..lanes)
                    .map(|_| (0..n.num_inputs()).map(|_| rng.gen_bool(0.5)).collect())
                    .collect();
                packed.set_inputs(&PackedVec::from_vectors(&vectors));
                for (lane, vector) in vectors.iter().enumerate() {
                    scalar.set_inputs(vector);
                    for (nid, _) in n.nets() {
                        assert_eq!(packed.lane(nid, lane), scalar.value(nid));
                    }
                    for (gid, _) in n.gates() {
                        assert_eq!(packed.gate_state(gid, lane), scalar.gate_state(gid));
                    }
                }
                remaining -= lanes;
            }
        }
    }

    #[test]
    fn packed_tri_matches_scalar_on_random_dags() {
        let spec = RandomDagSpec::new("packed-tri", 16, 6, 180, 10);
        let n = random_dag(&spec).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let levels = [Logic::Zero, Logic::One, Logic::X];
        let mut packed = PackedTriSimulator::new(&n);
        for lanes in [LANES, 9] {
            let vectors: Vec<Vec<Logic>> = (0..lanes)
                .map(|_| {
                    (0..n.num_inputs())
                        .map(|_| levels[rng.gen_index(3)])
                        .collect()
                })
                .collect();
            packed.set_inputs(&PackedTriVec::from_logic_vectors(&vectors));
            let mut scalar = TriSimulator::new(&n);
            for (lane, vector) in vectors.iter().enumerate() {
                for (i, &l) in vector.iter().enumerate() {
                    scalar.set_input(i, l);
                }
                for (nid, _) in n.nets() {
                    assert_eq!(
                        packed.lane(nid, lane),
                        scalar.value(nid),
                        "net {nid} lane {lane}"
                    );
                }
                for (i, _) in vector.iter().enumerate() {
                    scalar.set_input(i, Logic::X);
                }
            }
        }
    }

    #[test]
    fn fresh_packed_tri_is_all_x_downstream_of_inputs() {
        let spec = RandomDagSpec::new("packed-tri-fresh", 10, 4, 60, 6);
        let n = random_dag(&spec).unwrap();
        let packed = PackedTriSimulator::new(&n);
        let scalar = TriSimulator::new(&n);
        for (nid, _) in n.nets() {
            for lane in [0, 31, 63] {
                assert_eq!(packed.lane(nid, lane), scalar.value(nid));
            }
        }
    }

    #[test]
    fn broadcast_matches_full_width_lane_zero() {
        let spec = RandomDagSpec::new("packed-bcast", 12, 5, 90, 9);
        let n = random_dag(&spec).unwrap();
        let vector: Vec<bool> = (0..n.num_inputs()).map(|i| i % 3 != 1).collect();
        let sim = PackedSimulator::with_inputs(&n, &PackedVec::broadcast(&vector));
        let mut scalar = Simulator::new(&n);
        scalar.set_inputs(&vector);
        for (gid, _) in n.gates() {
            assert_eq!(sim.gate_state(gid, 0), scalar.gate_state(gid));
        }
    }

    #[test]
    fn fill_from_rng_is_bit_order_lsb_first() {
        // The documented contract: draw d for input i, bit l = lane l.
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let expected: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(99);
            (0..3).map(|_| r.next_u64()).collect()
        };
        let pv = PackedVec::fill_from_rng(3, &mut rng);
        assert_eq!(pv.lanes(), LANES);
        for (i, &word) in expected.iter().enumerate() {
            assert_eq!(pv.word(i), word);
            for lane in 0..LANES {
                assert_eq!(pv.get(i, lane), word >> lane & 1 == 1);
            }
        }
    }
}
