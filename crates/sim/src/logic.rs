//! Three-valued logic.

use std::fmt;

use svtox_netlist::GateKind;

/// A three-valued logic level: known 0, known 1, or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Known logic 0.
    Zero,
    /// Known logic 1.
    One,
    /// Unknown / undecided.
    #[default]
    X,
}

impl Logic {
    /// Whether the value is decided.
    #[must_use]
    pub fn is_known(self) -> bool {
        self != Self::X
    }

    /// The Boolean value, if known.
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Self::Zero => Some(false),
            Self::One => Some(true),
            Self::X => None,
        }
    }

    /// Three-valued inversion (X stays X).
    ///
    /// Deliberately named like [`std::ops::Not::not`]; implementing the
    /// operator trait itself would hide the three-valued semantics behind
    /// `!`, which reads as Boolean negation.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Self {
        match self {
            Self::Zero => Self::One,
            Self::One => Self::Zero,
            Self::X => Self::X,
        }
    }

    /// Evaluates a gate kind over three-valued inputs using
    /// controlling-value semantics.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != kind.arity()`.
    #[must_use]
    pub fn eval_gate(kind: GateKind, inputs: &[Logic]) -> Logic {
        assert_eq!(inputs.len(), kind.arity(), "arity mismatch for {kind}");
        let and_like = |invert: bool| -> Logic {
            // Controlling value 0: any known 0 forces the output.
            if inputs.contains(&Logic::Zero) {
                if invert {
                    Logic::One
                } else {
                    Logic::Zero
                }
            } else if inputs.iter().all(|&l| l == Logic::One) {
                if invert {
                    Logic::Zero
                } else {
                    Logic::One
                }
            } else {
                Logic::X
            }
        };
        let or_like = |invert: bool| -> Logic {
            if inputs.contains(&Logic::One) {
                if invert {
                    Logic::Zero
                } else {
                    Logic::One
                }
            } else if inputs.iter().all(|&l| l == Logic::Zero) {
                if invert {
                    Logic::One
                } else {
                    Logic::Zero
                }
            } else {
                Logic::X
            }
        };
        match kind {
            GateKind::Inv => inputs[0].not(),
            GateKind::Buf => inputs[0],
            GateKind::And(_) => and_like(false),
            GateKind::Nand(_) => and_like(true),
            GateKind::Or(_) => or_like(false),
            GateKind::Nor(_) => or_like(true),
            GateKind::Xor2 | GateKind::Xnor2 => match (inputs[0].to_bool(), inputs[1].to_bool()) {
                (Some(a), Some(b)) => {
                    let v = a ^ b;
                    let v = if kind == GateKind::Xnor2 { !v } else { v };
                    Logic::from(v)
                }
                _ => Logic::X,
            },
        }
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        if b {
            Self::One
        } else {
            Self::Zero
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Zero => "0",
            Self::One => "1",
            Self::X => "X",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_not() {
        assert_eq!(Logic::from(true), Logic::One);
        assert_eq!(Logic::from(false), Logic::Zero);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::X.to_bool(), None);
        assert_eq!(Logic::X.not(), Logic::X);
        assert_eq!(Logic::Zero.not(), Logic::One);
        assert!(Logic::One.is_known());
        assert!(!Logic::X.is_known());
    }

    #[test]
    fn controlling_values_pierce_x() {
        use Logic::{One, Zero, X};
        assert_eq!(Logic::eval_gate(GateKind::Nand(2), &[Zero, X]), One);
        assert_eq!(Logic::eval_gate(GateKind::Nand(2), &[One, X]), X);
        assert_eq!(Logic::eval_gate(GateKind::Nor(2), &[One, X]), Zero);
        assert_eq!(Logic::eval_gate(GateKind::Nor(2), &[Zero, X]), X);
        assert_eq!(Logic::eval_gate(GateKind::And(3), &[One, Zero, X]), Zero);
        assert_eq!(Logic::eval_gate(GateKind::Or(3), &[Zero, X, One]), One);
    }

    #[test]
    fn known_inputs_match_two_valued() {
        for kind in [
            GateKind::Inv,
            GateKind::Buf,
            GateKind::Nand(2),
            GateKind::Nor(3),
            GateKind::And(2),
            GateKind::Or(4),
            GateKind::Xor2,
            GateKind::Xnor2,
        ] {
            let n = kind.arity();
            for bits in 0..(1u32 << n) {
                let bools: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                let tri: Vec<Logic> = bools.iter().map(|&b| Logic::from(b)).collect();
                assert_eq!(
                    Logic::eval_gate(kind, &tri),
                    Logic::from(kind.eval(&bools)),
                    "{kind} on {bits:b}"
                );
            }
        }
    }

    #[test]
    fn xor_with_unknown_is_unknown() {
        use Logic::{One, X};
        assert_eq!(Logic::eval_gate(GateKind::Xor2, &[One, X]), X);
        assert_eq!(Logic::eval_gate(GateKind::Xnor2, &[X, X]), X);
    }

    #[test]
    fn display() {
        assert_eq!(Logic::Zero.to_string(), "0");
        assert_eq!(Logic::One.to_string(), "1");
        assert_eq!(Logic::X.to_string(), "X");
    }
}
