//! Analytic average-leakage estimation via signal probabilities.
//!
//! The paper's "average leakage" baseline simulates 10 000 random vectors.
//! A standard cheaper estimate propagates static signal probabilities
//! (independence assumption) through the netlist and takes the expected
//! leakage per gate over its input-state distribution:
//!
//! ```text
//! E[leak(g)] = Σ_state P(state) · leak(g, state)
//! ```
//!
//! The estimate is exact for fanout-free (tree) circuits and approximate
//! under reconvergent fanout, where pin correlations are ignored — the
//! usual accuracy trade-off of probabilistic power analysis. On the
//! benchmark suite it lands within a few percent of the Monte-Carlo figure
//! at a tiny fraction of the cost.

use svtox_cells::{InputState, Library, LibraryError};
use svtox_netlist::{GateKind, Netlist};
use svtox_tech::Current;

use crate::random::LeakageTotals;

/// Propagates static signal probabilities `P(net = 1)` through the netlist,
/// assuming primary inputs are independent fair coins and gate inputs are
/// independent.
///
/// # Panics
///
/// Panics if the netlist contains non-primitive kinds with more than 16
/// inputs (impossible for validated netlists).
#[must_use]
pub fn signal_probabilities(netlist: &Netlist) -> Vec<f64> {
    let mut p = vec![0.5f64; netlist.num_nets()];
    let mut pin_probs = Vec::new();
    for &gid in netlist.topo_order() {
        let gate = netlist.gate(gid);
        pin_probs.clear();
        pin_probs.extend(gate.inputs().iter().map(|&n| p[n.index()]));
        p[gate.output().index()] = output_probability(gate.kind(), &pin_probs);
    }
    p
}

/// `P(output = 1)` of a gate under independent input probabilities.
fn output_probability(kind: GateKind, pins: &[f64]) -> f64 {
    match kind {
        GateKind::Inv => 1.0 - pins[0],
        GateKind::Buf => pins[0],
        GateKind::And(_) => pins.iter().product(),
        GateKind::Nand(_) => 1.0 - pins.iter().product::<f64>(),
        GateKind::Or(_) => 1.0 - pins.iter().map(|q| 1.0 - q).product::<f64>(),
        GateKind::Nor(_) => pins.iter().map(|q| 1.0 - q).product(),
        GateKind::Xor2 => pins[0] + pins[1] - 2.0 * pins[0] * pins[1],
        GateKind::Xnor2 => 1.0 - (pins[0] + pins[1] - 2.0 * pins[0] * pins[1]),
    }
}

/// Expected all-fast leakage of the netlist under independent random
/// inputs — the analytic counterpart of
/// [`crate::random_average_leakage`].
///
/// # Errors
///
/// Returns an error if the netlist uses a gate kind absent from the
/// library.
///
/// # Example
///
/// ```
/// use svtox_cells::{Library, LibraryOptions};
/// use svtox_netlist::generators::benchmark;
/// use svtox_sim::{expected_leakage, random_average_leakage};
/// use svtox_tech::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = Library::new(Technology::predictive_65nm(), LibraryOptions::default())?;
/// let c432 = benchmark("c432")?;
/// let analytic = expected_leakage(&c432, &lib)?;
/// let monte_carlo = random_average_leakage(&c432, &lib, 2000, 42)?;
/// let rel = (analytic.total.value() - monte_carlo.total.value()).abs()
///     / monte_carlo.total.value();
/// assert!(rel < 0.10, "analytic estimate off by {rel:.2}");
/// # Ok(())
/// # }
/// ```
pub fn expected_leakage(
    netlist: &Netlist,
    library: &Library,
) -> Result<LeakageTotals, LibraryError> {
    let p = signal_probabilities(netlist);
    let mut isub = 0.0;
    let mut igate = 0.0;
    let mut pins = Vec::new();
    for (_, gate) in netlist.gates() {
        let cell = library.cell(gate.kind())?;
        pins.clear();
        pins.extend(gate.inputs().iter().map(|&n| p[n.index()]));
        let arity = gate.kind().arity();
        for state in InputState::all(arity) {
            let weight: f64 = (0..arity)
                .map(|i| if state.pin(i) { pins[i] } else { 1.0 - pins[i] })
                .product();
            if weight == 0.0 {
                continue;
            }
            let split = cell.leakage_breakdown(cell.fast_version(), state);
            isub += weight * split.isub.value();
            igate += weight * split.igate.value();
        }
    }
    let isub = Current::new(isub);
    let igate = Current::new(igate);
    Ok(LeakageTotals {
        total: isub + igate,
        isub,
        igate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_average_leakage;
    use svtox_cells::LibraryOptions;
    use svtox_netlist::generators::benchmark;
    use svtox_netlist::{GateKind, NetlistBuilder};
    use svtox_tech::Technology;

    fn library() -> Library {
        Library::new(Technology::predictive_65nm(), LibraryOptions::default()).unwrap()
    }

    /// A fanout-free tree: the independence assumption is exact, so the
    /// analytic estimate must converge to the Monte-Carlo average.
    #[test]
    fn exact_on_trees() {
        let mut b = NetlistBuilder::new("tree");
        let leaves: Vec<_> = (0..8).map(|i| b.add_input(format!("i{i}"))).collect();
        let mut layer = leaves;
        let mut toggle = false;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                let kind = if toggle {
                    GateKind::Nor(2)
                } else {
                    GateKind::Nand(2)
                };
                next.push(b.add_gate(kind, pair).unwrap());
                toggle = !toggle;
            }
            layer = next;
        }
        b.mark_output(layer[0]);
        let n = b.finish().unwrap();
        let lib = library();
        let analytic = expected_leakage(&n, &lib).unwrap();
        let mc = random_average_leakage(&n, &lib, 20_000, 3).unwrap();
        let rel = (analytic.total.value() - mc.total.value()).abs() / mc.total.value();
        assert!(rel < 0.02, "tree estimate off by {rel:.3}");
    }

    #[test]
    fn close_on_benchmarks() {
        let lib = library();
        for name in ["c432", "c880"] {
            let n = benchmark(name).unwrap();
            let analytic = expected_leakage(&n, &lib).unwrap();
            let mc = random_average_leakage(&n, &lib, 3000, 9).unwrap();
            let rel = (analytic.total.value() - mc.total.value()).abs() / mc.total.value();
            assert!(rel < 0.12, "{name}: analytic off by {rel:.3}");
            // Component split stays sane too.
            assert!(analytic.igate_share() > 0.15 && analytic.igate_share() < 0.5);
        }
    }

    #[test]
    fn probabilities_are_probabilities() {
        let n = benchmark("c1908").unwrap();
        for (i, p) in signal_probabilities(&n).iter().enumerate() {
            assert!((0.0..=1.0).contains(p), "net {i}: p = {p}");
        }
    }

    #[test]
    fn output_probability_truth() {
        assert_eq!(output_probability(GateKind::Inv, &[0.25]), 0.75);
        assert_eq!(output_probability(GateKind::And(2), &[0.5, 0.5]), 0.25);
        assert_eq!(output_probability(GateKind::Nand(2), &[1.0, 1.0]), 0.0);
        assert_eq!(output_probability(GateKind::Nor(2), &[0.0, 0.0]), 1.0);
        assert_eq!(output_probability(GateKind::Or(3), &[0.0, 0.0, 1.0]), 1.0);
        assert_eq!(output_probability(GateKind::Xor2, &[0.5, 0.5]), 0.5);
        assert_eq!(output_probability(GateKind::Xnor2, &[1.0, 1.0]), 1.0);
        assert_eq!(output_probability(GateKind::Buf, &[0.3]), 0.3);
    }

    /// Deterministic nets get deterministic probabilities.
    #[test]
    fn constant_cones_collapse() {
        let mut b = NetlistBuilder::new("const");
        let a = b.add_input("a");
        let na = b.add_gate(GateKind::Inv, &[a]).unwrap();
        // a AND !a is always 0 under *correlated* truth, but the
        // independence model gives 0.25 — document the approximation.
        let and = b.add_gate(GateKind::And(2), &[a, na]).unwrap();
        b.mark_output(and);
        let n = b.finish().unwrap();
        let p = signal_probabilities(&n);
        let and_net = n.gate(n.topo_order()[1]).output();
        assert!((p[and_net.index()] - 0.25).abs() < 1e-12);
    }
}
