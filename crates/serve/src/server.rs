//! The job server: accept loop, admission control, runner pool, router.
//!
//! Architecture (one [`ServerHandle`] owns all of it):
//!
//! * an **accept loop** on a non-blocking listener, polling a shutdown
//!   token between accepts; each connection gets a short-lived handler
//!   thread with read/write timeouts, so a stalled or vanished client
//!   can never wedge the server;
//! * a **bounded job queue** (admission control): `POST /jobs` beyond
//!   the configured depth is rejected with `503 queue full` instead of
//!   being buffered without bound — under overload the server sheds
//!   load, it does not grow latency forever;
//! * a fixed pool of **runner threads** consuming the queue; every job
//!   runs under a per-job [`svtox_exec::Budget`] whose deadline maps
//!   straight onto the optimizer's `Degraded{DeadlineExpired}` contract
//!   and whose token serves `POST /jobs/:id/cancel` and shutdown;
//! * the **shared caches** of [`crate::cache::SharedCaches`], so repeat
//!   traffic skips parsing and characterization.
//!
//! Every job terminates in a typed outcome — the accept loop and the
//! runners never panic on a bad request, a dead client, or an injected
//! fault; chaos scenarios assert exactly that.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use svtox_core::{
    Budget, CancelToken, CheckpointSpec, DelayPenalty, ExecConfig, PortfolioConfig, Problem,
    RetryPolicy, RunOutcome,
};
use svtox_fault::{Fault, FaultPlan};
use svtox_obs::{json, FieldValue, Obs};
use svtox_sta::TimingConfig;

use crate::cache::SharedCaches;
use crate::http::{self, ChunkedWriter, Request, RequestError};
use crate::job::{JobPhase, JobRecord, JobResult, JobSink, JobSpec, SolutionSummary};
use crate::journal::{Journal, LiveJob, JOURNAL_FILE};
use crate::recovery::{self, RecoveredState};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Runner threads consuming the job queue.
    pub runners: usize,
    /// Admission bound: queued (not yet running) jobs beyond this are
    /// rejected with 503.
    pub queue_depth: usize,
    /// Deadline applied to jobs that do not bring their own.
    pub default_deadline: Duration,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Socket read/write timeout for request handling.
    pub io_timeout: Duration,
    /// Optional fault plan injected into every job run (chaos testing).
    pub fault_plan: Option<String>,
    /// Seed for probabilistic fault triggers.
    pub fault_seed: u64,
    /// Write-ahead journal directory. `Some` makes admissions durable:
    /// a killed server replays the journal on restart, re-enqueues
    /// non-terminal jobs, and resumes previously running ones from their
    /// checkpoints.
    pub journal: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            runners: 2,
            queue_depth: 64,
            default_deadline: Duration::from_secs(2),
            max_body: 4 * 1024 * 1024,
            io_timeout: Duration::from_secs(10),
            fault_plan: None,
            fault_seed: 0,
            journal: None,
        }
    }
}

struct JobQueue {
    queue: Mutex<VecDeque<Arc<JobRecord>>>,
    ready: Condvar,
}

struct ServerState {
    config: ServerConfig,
    obs: Obs,
    caches: SharedCaches,
    jobs: Mutex<HashMap<u64, Arc<JobRecord>>>,
    next_id: AtomicU64,
    queue: JobQueue,
    shutdown: CancelToken,
    fault: Fault,
    journal: Journal,
}

impl ServerState {
    /// Admits a job or rejects it at the queue-depth bound. Admitted
    /// jobs hit the journal **before** the caller sees the id: an
    /// acknowledged admission survives a crash.
    fn admit(&self, spec: JobSpec) -> Result<(u64, usize), usize> {
        let mut queue = self.queue.queue.lock().expect("job queue lock");
        let depth = queue.len();
        if depth >= self.config.queue_depth {
            self.obs.add("serve.jobs_rejected", 1);
            return Err(depth);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Fresh, not resume: after a journal wipe a stale `job-N.ckpt`
        // from a previous incarnation must not leak into a new job that
        // happens to reuse the id. Derived from the configured directory,
        // not the journal handle, so checkpointing survives a degraded
        // journal.
        let checkpoint = self
            .config
            .journal
            .as_ref()
            .map(|dir| CheckpointSpec::fresh(dir.join(crate::journal::checkpoint_name(id))));
        self.journal.admit(id, &spec);
        let record = Arc::new(JobRecord::with_checkpoint(id, spec, checkpoint));
        record.events.push(&event_line(
            "job.queued",
            id,
            &[("depth", FieldValue::U64(depth as u64))],
        ));
        self.jobs
            .lock()
            .expect("job registry lock")
            .insert(id, Arc::clone(&record));
        queue.push_back(record);
        self.obs.add("serve.jobs_admitted", 1);
        self.obs.set_gauge("serve.queue_depth", queue.len() as u64);
        self.queue.ready.notify_one();
        Ok((id, depth + 1))
    }

    fn job(&self, id: u64) -> Option<Arc<JobRecord>> {
        self.jobs
            .lock()
            .expect("job registry lock")
            .get(&id)
            .cloned()
    }

    /// Blocks for the next job; `None` means shutdown.
    fn next_job(&self) -> Option<Arc<JobRecord>> {
        let mut queue = self.queue.queue.lock().expect("job queue lock");
        loop {
            if let Some(job) = queue.pop_front() {
                self.obs.set_gauge("serve.queue_depth", queue.len() as u64);
                return Some(job);
            }
            if self.shutdown.is_cancelled() {
                return None;
            }
            let (guard, _) = self
                .queue
                .ready
                .wait_timeout(queue, Duration::from_millis(50))
                .expect("job queue lock poisoned");
            queue = guard;
        }
    }
}

/// A JSONL lifecycle event line (same shape as obs `event` records).
fn event_line(name: &str, job: u64, fields: &[(&str, FieldValue<'_>)]) -> String {
    // Reuse the obs event serializer by emitting through a scratch handle
    // would drag a sink along; the format is small enough to write here.
    let mut obj = std::collections::BTreeMap::new();
    obj.insert("type".to_string(), json::Value::Str("event".to_string()));
    obj.insert("name".to_string(), json::Value::Str(name.to_string()));
    obj.insert("job".to_string(), json::Value::Num(job as f64));
    for (key, value) in fields {
        let v = match value {
            FieldValue::U64(n) => json::Value::Num(*n as f64),
            FieldValue::I64(n) => json::Value::Num(*n as f64),
            FieldValue::F64(n) => json::Value::Num(*n),
            FieldValue::Bool(b) => json::Value::Bool(*b),
            FieldValue::Str(s) => json::Value::Str((*s).to_string()),
        };
        obj.insert((*key).to_string(), v);
    }
    json::Value::Obj(obj).to_string()
}

/// A running server: address, control, and join handles.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    runners: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the resolved port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's observability handle (`/metrics` source).
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.state.obs
    }

    /// The shared caches (for tests and reports).
    #[must_use]
    pub fn caches(&self) -> &SharedCaches {
        &self.state.caches
    }

    /// The shutdown token; cancelling it stops the server.
    #[must_use]
    pub fn shutdown_token(&self) -> CancelToken {
        self.state.shutdown.clone()
    }

    /// Stops accepting, cancels every queued and running job, and joins
    /// all server threads. Running jobs degrade (`Cancelled`); queued
    /// jobs fail typed (`server shutdown`); nothing is left dangling.
    pub fn shutdown(mut self) {
        self.stop_threads();
        // Anything still queued never ran: give it a terminal outcome so
        // every admitted job ends typed — in the journal too, so a later
        // restart does not resurrect deliberately dropped jobs.
        let drained: Vec<Arc<JobRecord>> = self
            .state
            .queue
            .queue
            .lock()
            .expect("job queue lock")
            .drain(..)
            .collect();
        for job in drained {
            let result = JobResult {
                outcome: "failed",
                reason: None,
                error: Some("server shutdown before the job started".to_string()),
                circuit: job.spec.circuit.clone().unwrap_or_default(),
                solution: None,
                winner: None,
                liberty_cells: None,
                baseline_leakage_ua: None,
            };
            self.state.journal.done(job.id, &result);
            job.set_phase(JobPhase::Done(Box::new(result)));
            job.events.push(&event_line("job.dropped", job.id, &[]));
            job.events.close();
        }
    }

    /// Dies the way `SIGKILL` would, as far as the journal can tell:
    /// freezes the journal first (no terminal records get written), then
    /// tears the threads down. Queued jobs stay queued *in the journal*
    /// and running jobs keep their checkpoints — exactly the state a
    /// restart must recover from. The in-process test double for the
    /// kill-based smoke in `ci.sh`.
    pub fn crash(mut self) {
        self.state.journal.freeze();
        self.stop_threads();
        // No queue drain: a crashed server does not get to mark its
        // queued jobs failed. (In-memory records are dropped with the
        // handle, as a killed process would drop them.)
        self.state
            .queue
            .queue
            .lock()
            .expect("job queue lock")
            .clear();
    }

    fn stop_threads(&mut self) {
        self.state.shutdown.cancel();
        // Cancel running jobs so their budgets expire promptly.
        for job in self.state.jobs.lock().expect("job registry lock").values() {
            job.cancel.cancel();
        }
        self.state.queue.ready.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for runner in self.runners.drain(..) {
            let _ = runner.join();
        }
    }
}

/// Starts a server and returns its handle.
///
/// When the config names a journal directory, startup first replays the
/// journal: terminal jobs are re-registered done (clients polling across
/// the restart still get their answer), queued jobs are re-enqueued, and
/// previously running jobs are re-enqueued with a **resume** checkpoint
/// so the restarted run continues from its persisted frontier —
/// bit-identical to an uninterrupted run, per the checkpoint contract.
/// An unusable journal (unknown version, unreadable) degrades loudly
/// (`serve.journal.degraded`) and the server starts cold; it never
/// refuses to start over durability.
///
/// # Errors
///
/// Returns the bind error, or a fault-plan parse error as `InvalidInput`.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let fault = match &config.fault_plan {
        Some(spec) => {
            let plan = FaultPlan::parse(spec, config.fault_seed)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            Fault::new(&plan)
        }
        None => Fault::disabled(),
    };
    let obs = Obs::enabled();

    // Replay the journal before anything can race it.
    let recovery_start = Instant::now();
    let (journal, recovered, next_id) = match &config.journal {
        Some(dir) => {
            let recovered = match recovery::replay(&dir.join(JOURNAL_FILE), &fault) {
                Ok(recovered) => recovered,
                Err(why) => {
                    eprintln!("warning: journal unusable, starting cold: {why}");
                    obs.add("serve.journal.degraded", 1);
                    recovery::Recovery::empty()
                }
            };
            if recovered.torn_tail {
                obs.add("serve.journal.torn_tail", 1);
            }
            let live: BTreeMap<u64, LiveJob> = recovered
                .jobs
                .iter()
                .filter(|job| job.state != RecoveredState::Done)
                .map(|job| {
                    (
                        job.id,
                        LiveJob {
                            spec: job.spec.clone(),
                            state: match job.state {
                                RecoveredState::Running => "running",
                                _ => "queued",
                            },
                            checkpoint: job.checkpoint.clone(),
                        },
                    )
                })
                .collect();
            let next_id = recovered.next_id;
            (
                Journal::open(dir, live, &obs, &fault),
                recovered.jobs,
                next_id,
            )
        }
        None => (Journal::inactive(), Vec::new(), 1),
    };

    // `SO_REUSEADDR` where the address allows it: a recovering server
    // must be able to rebind the port its predecessor just died on.
    let listener = match config.addr.parse::<SocketAddr>() {
        Ok(sockaddr) => crate::net::bind_reuse(sockaddr)?,
        Err(_) => TcpListener::bind(&config.addr)?,
    };
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let runner_count = config.runners.max(1);
    let state = Arc::new(ServerState {
        config,
        obs,
        caches: SharedCaches::new(),
        jobs: Mutex::new(HashMap::new()),
        next_id: AtomicU64::new(next_id),
        queue: JobQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        },
        shutdown: CancelToken::new(),
        fault,
        journal,
    });
    if !recovered.is_empty() {
        readmit(&state, recovered);
        state.obs.set_gauge(
            "serve.journal.recovery_ms",
            recovery_start.elapsed().as_millis() as u64,
        );
    }

    let accept_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("svtox-serve-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_state))?;

    let mut runners = Vec::with_capacity(runner_count);
    for i in 0..runner_count {
        let runner_state = Arc::clone(&state);
        runners.push(
            std::thread::Builder::new()
                .name(format!("svtox-serve-runner-{i}"))
                .spawn(move || runner_loop(&runner_state))?,
        );
    }
    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        runners,
    })
}

/// Re-registers replayed jobs on a restarted server.
///
/// Terminal jobs come back as closed `done` records; non-terminal jobs
/// are re-enqueued, with previously **running** jobs carrying a resume
/// checkpoint (`serve.journal.checkpoint_missing` counts the ones whose
/// checkpoint file vanished — those restart cold, which the resume spec
/// already treats as an empty replay).
fn readmit(state: &Arc<ServerState>, recovered: Vec<crate::recovery::RecoveredJob>) {
    let mut jobs = state.jobs.lock().expect("job registry lock");
    let mut queue = state.queue.queue.lock().expect("job queue lock");
    for job in recovered {
        state.obs.add("serve.journal.recovered_jobs", 1);
        if let (RecoveredState::Done, Some(result)) = (job.state, job.result) {
            let record = Arc::new(JobRecord::new(job.id, job.spec));
            record.set_phase(JobPhase::Done(Box::new(result)));
            record.events.close();
            jobs.insert(job.id, record);
            continue;
        }
        let checkpoint = job.checkpoint.as_ref().map(|name| {
            let path = state.journal.dir().join(name);
            if job.state == RecoveredState::Running && !path.exists() {
                state.obs.add("serve.journal.checkpoint_missing", 1);
            }
            // Resume even for queued jobs: their file does not exist yet,
            // and a resume of a missing file is exactly a fresh start.
            CheckpointSpec::resume(path)
        });
        if job.state == RecoveredState::Running {
            state.obs.add("serve.journal.resumed_jobs", 1);
        }
        let record = Arc::new(JobRecord::with_checkpoint(job.id, job.spec, checkpoint));
        record.events.push(&event_line(
            "job.recovered",
            job.id,
            &[(
                "was",
                FieldValue::Str(match job.state {
                    RecoveredState::Running => "running",
                    _ => "queued",
                }),
            )],
        ));
        jobs.insert(job.id, Arc::clone(&record));
        queue.push_back(record);
    }
    state.obs.set_gauge("serve.queue_depth", queue.len() as u64);
    drop(queue);
    state.queue.ready.notify_all();
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    while !state.shutdown.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                state.obs.add("serve.connections", 1);
                let conn_state = Arc::clone(state);
                // Handler threads are short-lived (Connection: close) and
                // bounded by socket timeouts; they detach.
                let spawned = std::thread::Builder::new()
                    .name("svtox-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &conn_state));
                if spawned.is_err() {
                    state.obs.add("serve.spawn_failures", 1);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                state.obs.add("serve.accept_errors", 1);
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Serves one connection: a loop of request → response that continues
/// while the client asks for `Connection: keep-alive`, and ends on the
/// first close-disposition response, error, or timeout. A connection
/// that goes quiet *mid-request* gets a 408 (slow-loris defence); one
/// that goes quiet *between* requests is just closed.
fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(state.config.io_timeout));
    let _ = stream.set_write_timeout(Some(state.config.io_timeout));
    let mut served = 0u64;
    loop {
        let request = match http::read_request(&mut stream, state.config.max_body) {
            Ok(request) => request,
            Err(RequestError::Io(_)) => {
                // The client is gone (disconnect or stall): nothing to
                // answer, and — the chaos invariant — nothing shared to
                // corrupt.
                state.obs.add("serve.client_disconnects", 1);
                return;
            }
            Err(RequestError::TimedOut { partial: true }) => {
                // Bytes arrived, then the drip stopped: slow-loris. Give
                // the socket back with a typed answer.
                state.obs.add("serve.http.timeouts", 1);
                let _ = respond_error(&mut stream, 408, "request timed out", false);
                return;
            }
            Err(RequestError::TimedOut { partial: false }) => {
                // An idle keep-alive connection with nothing in flight.
                return;
            }
            Err(RequestError::TooLarge(_)) => {
                let _ = respond_error(&mut stream, 413, "body too large", false);
                return;
            }
            Err(RequestError::Malformed(why)) => {
                state.obs.add("serve.bad_requests", 1);
                let _ = respond_error(&mut stream, 400, &why, false);
                return;
            }
        };
        if served > 0 {
            state.obs.add("serve.http.keepalive_reuse", 1);
        }
        served += 1;
        if !route(&mut stream, &request, state) {
            return;
        }
    }
}

fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let mut obj = std::collections::BTreeMap::new();
    obj.insert("error".to_string(), json::Value::Str(message.to_string()));
    http::write_response_conn(
        stream,
        status,
        "application/json",
        &json::Value::Obj(obj).to_string(),
        keep_alive,
    )
}

fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    doc: &json::Value,
    keep_alive: bool,
) -> io::Result<()> {
    http::write_response_conn(
        stream,
        status,
        "application/json",
        &doc.to_string(),
        keep_alive,
    )
}

/// Dispatches one request; returns whether the connection stays open
/// for another (the client asked for keep-alive, the endpoint is not a
/// stream or shutdown, and the response went out cleanly).
fn route(stream: &mut TcpStream, request: &Request, state: &Arc<ServerState>) -> bool {
    let path = request.path.as_str();
    let method = request.method.as_str();
    let keep = request.keep_alive;
    let (written, keep) = match (method, path) {
        ("POST", "/jobs") => (post_job(stream, &request.body, state, keep), keep),
        ("GET", "/metrics") => (
            http::write_response_conn(stream, 200, "text/plain", &state.obs.render_metrics(), keep),
            keep,
        ),
        ("POST", "/shutdown") => {
            let mut obj = std::collections::BTreeMap::new();
            obj.insert("stopping".to_string(), json::Value::Bool(true));
            let result = respond_json(stream, 200, &json::Value::Obj(obj), false);
            state.shutdown.cancel();
            for job in state.jobs.lock().expect("job registry lock").values() {
                job.cancel.cancel();
            }
            (result, false)
        }
        ("GET", _) if path.starts_with("/jobs/") && path.ends_with("/events") => {
            // Chunked streams own the socket until they finish.
            (get_job(stream, path, state, false), false)
        }
        ("GET", _) if path.starts_with("/jobs/") => (get_job(stream, path, state, keep), keep),
        ("POST", _) if path.starts_with("/jobs/") && path.ends_with("/cancel") => {
            (cancel_job(stream, path, state, keep), keep)
        }
        _ => (
            respond_error(stream, 404, &format!("no route for {method} {path}"), keep),
            keep,
        ),
    };
    keep && written.is_ok()
}

fn job_id_from(path: &str) -> Option<u64> {
    path.strip_prefix("/jobs/")?.split('/').next()?.parse().ok()
}

fn post_job(
    stream: &mut TcpStream,
    body: &str,
    state: &Arc<ServerState>,
    keep_alive: bool,
) -> io::Result<()> {
    let spec = match JobSpec::from_json(body) {
        Ok(spec) => spec,
        Err(why) => {
            state.obs.add("serve.bad_requests", 1);
            return respond_error(stream, 400, &why, keep_alive);
        }
    };
    match state.admit(spec) {
        Ok((id, depth)) => {
            let mut obj = std::collections::BTreeMap::new();
            obj.insert("id".to_string(), json::Value::Num(id as f64));
            obj.insert("state".to_string(), json::Value::Str("queued".to_string()));
            obj.insert("queue_depth".to_string(), json::Value::Num(depth as f64));
            respond_json(stream, 202, &json::Value::Obj(obj), keep_alive)
        }
        Err(depth) => {
            let mut obj = std::collections::BTreeMap::new();
            obj.insert(
                "error".to_string(),
                json::Value::Str("queue full".to_string()),
            );
            obj.insert("queue_depth".to_string(), json::Value::Num(depth as f64));
            respond_json(stream, 503, &json::Value::Obj(obj), keep_alive)
        }
    }
}

fn get_job(
    stream: &mut TcpStream,
    path: &str,
    state: &Arc<ServerState>,
    keep_alive: bool,
) -> io::Result<()> {
    let Some(id) = job_id_from(path) else {
        return respond_error(stream, 400, "bad job id", keep_alive);
    };
    let Some(job) = state.job(id) else {
        return respond_error(stream, 404, &format!("no job {id}"), keep_alive);
    };
    if path.ends_with("/events") {
        return stream_events(stream, &job, state);
    }
    respond_json(stream, 200, &job.status_json(), keep_alive)
}

fn cancel_job(
    stream: &mut TcpStream,
    path: &str,
    state: &Arc<ServerState>,
    keep_alive: bool,
) -> io::Result<()> {
    let Some(id) = job_id_from(path) else {
        return respond_error(stream, 400, "bad job id", keep_alive);
    };
    let Some(job) = state.job(id) else {
        return respond_error(stream, 404, &format!("no job {id}"), keep_alive);
    };
    job.cancel.cancel();
    state.obs.add("serve.jobs_cancel_requests", 1);
    let mut obj = std::collections::BTreeMap::new();
    obj.insert("id".to_string(), json::Value::Num(id as f64));
    obj.insert("cancel".to_string(), json::Value::Bool(true));
    respond_json(stream, 200, &json::Value::Obj(obj), keep_alive)
}

/// Streams the job's event buffer as chunked JSONL until the job (or the
/// server) finishes. A client that disconnects mid-stream just ends the
/// handler thread; the job itself is unaffected.
fn stream_events(
    stream: &mut TcpStream,
    job: &Arc<JobRecord>,
    state: &Arc<ServerState>,
) -> io::Result<()> {
    let mut writer = ChunkedWriter::begin(stream, 200, "application/jsonl")?;
    let mut cursor = 0usize;
    loop {
        let (lines, closed) = job.events.wait_from(cursor, Duration::from_millis(100));
        for line in &lines {
            writer.write_chunk(&format!("{line}\n"))?;
        }
        cursor += lines.len();
        if closed && lines.is_empty() {
            return writer.finish();
        }
        if state.shutdown.is_cancelled() && lines.is_empty() && !closed {
            // Server going down with the job unfinished: terminate the
            // stream cleanly rather than holding the client.
            return writer.finish();
        }
    }
}

fn runner_loop(state: &Arc<ServerState>) {
    while let Some(job) = state.next_job() {
        run_job(state, &job);
    }
}

/// Executes one job to its typed terminal state. Never panics: every
/// failure path lands in `JobResult { outcome: "failed", .. }`.
fn run_job(state: &Arc<ServerState>, job: &Arc<JobRecord>) {
    job.set_phase(JobPhase::Running);
    state.journal.state(job.id, "running");
    job.events.push(&event_line("job.started", job.id, &[]));
    let result = execute(state, job);
    match result.outcome {
        "complete" => state.obs.add("serve.jobs_completed", 1),
        "degraded" => state.obs.add("serve.jobs_degraded", 1),
        _ => state.obs.add("serve.jobs_failed", 1),
    }
    job.events.push(&event_line(
        "job.finished",
        job.id,
        &[("outcome", FieldValue::Str(result.outcome))],
    ));
    state.journal.done(job.id, &result);
    job.set_phase(JobPhase::Done(Box::new(result)));
    job.events.close();
}

fn failed(circuit: &str, error: String) -> JobResult {
    JobResult {
        outcome: "failed",
        reason: None,
        error: Some(error),
        circuit: circuit.to_string(),
        solution: None,
        winner: None,
        liberty_cells: None,
        baseline_leakage_ua: None,
    }
}

fn execute(state: &Arc<ServerState>, job: &Arc<JobRecord>) -> JobResult {
    let spec = &job.spec;
    let obs = &state.obs;

    // Resolve the netlist through the content cache.
    let netlist = match (&spec.circuit, &spec.bench) {
        (Some(name), _) => state.caches.netlist_named(name, obs),
        (None, Some(text)) => state.caches.netlist_from_bench(text, obs),
        (None, None) => {
            return failed("", "spec has neither circuit nor bench".to_string());
        }
    };
    let netlist = match netlist {
        Ok(n) => n,
        Err(e) => return failed(spec.circuit.as_deref().unwrap_or(""), e.to_string()),
    };
    let circuit = netlist.name().to_string();

    // ECO jobs: apply the spec's edit script and swap in the post-edit
    // netlist (cached across jobs by its content hash).
    let netlist = match &spec.edits {
        Some(text) => match state.caches.netlist_edited(&netlist, text, obs) {
            Ok(n) => n,
            Err(e) => return failed(&circuit, format!("edits: {e}")),
        },
        None => netlist,
    };

    // Characterized cell tables, shared across jobs.
    let library = match state.caches.library(spec.library, obs) {
        Ok(lib) => lib,
        Err(e) => return failed(&circuit, e.to_string()),
    };

    // Optional Liberty cross-check: the submitted text must parse and
    // cover at least one cell (cached by content hash).
    let liberty_cells = match &spec.liberty {
        Some(text) => match state.caches.liberty(text, obs) {
            Ok(rows) if rows.is_empty() => {
                return failed(&circuit, "liberty text has no leakage rows".to_string());
            }
            Ok(rows) => Some(rows.len()),
            Err(e) => return failed(&circuit, format!("liberty: {e}")),
        },
        None => None,
    };

    let penalty = match DelayPenalty::new(spec.penalty) {
        Ok(p) => p,
        Err(e) => return failed(&circuit, e.to_string()),
    };
    let problem = match Problem::new(&netlist, &library, TimingConfig::default()) {
        Ok(p) => p,
        Err(e) => return failed(&circuit, e.to_string()),
    };

    // Per-job observability: the trace streams to the job's event buffer.
    let job_obs = Obs::enabled();
    job_obs.set_sink(Box::new(JobSink(job.events.clone())));

    // Optional Monte-Carlo baseline: the packed word-level estimator makes
    // this cheap enough to run inline before the search.
    let baseline_leakage_ua = if spec.vectors > 0 {
        match svtox_sim::random_average_leakage_parallel(
            &netlist,
            &library,
            spec.vectors,
            42,
            &ExecConfig::serial(),
            &job_obs,
        ) {
            Ok(totals) => Some(totals.as_micro_amps()),
            Err(e) => return failed(&circuit, format!("baseline: {e}")),
        }
    } else {
        None
    };

    let deadline = spec.deadline.unwrap_or(state.config.default_deadline);
    let budget = Budget::linked(Some(deadline), job.cancel.clone());
    let exec = ExecConfig::with_threads(spec.threads.max(1))
        .with_time_budget(deadline)
        .with_retries(RetryPolicy::resilient());
    let optimizer = problem
        .optimizer(penalty, spec.mode)
        .with_obs(&job_obs)
        .with_fault(&state.fault);
    // `"mode":"portfolio"` races the strategy portfolio and reports the
    // winning member; the default path is the single-strategy engine.
    let (outcome, winner) = if spec.portfolio {
        match optimizer.run_portfolio(
            &exec,
            &budget,
            &PortfolioConfig::default(),
            job.checkpoint.as_ref(),
        ) {
            Ok(p) => {
                let winner = p.winner.slug().to_string();
                (p.into_run_outcome(), Some(winner))
            }
            Err(error) => (RunOutcome::Failed { error }, None),
        }
    } else {
        (
            optimizer.run_with_budget(&exec, &budget, job.checkpoint.as_ref()),
            None,
        )
    };
    job_obs.emit_counters();
    job_obs.flush();
    // Fold the job's engine counters into the server registry so
    // `/metrics` aggregates across jobs.
    for (name, value) in job_obs.counter_snapshot() {
        obs.add(&name, value);
    }

    match outcome {
        RunOutcome::Complete { solution, .. } => JobResult {
            outcome: "complete",
            reason: None,
            error: None,
            circuit,
            solution: Some(SolutionSummary::of(&solution)),
            winner,
            liberty_cells,
            baseline_leakage_ua,
        },
        RunOutcome::Degraded { reason, best, .. } => JobResult {
            outcome: "degraded",
            reason: Some(reason.to_string()),
            error: None,
            circuit,
            solution: Some(SolutionSummary::of(&best)),
            winner,
            liberty_cells,
            baseline_leakage_ua,
        },
        RunOutcome::Failed { error } => failed(&circuit, error.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::call;

    fn test_config() -> ServerConfig {
        ServerConfig {
            default_deadline: Duration::from_millis(400),
            ..ServerConfig::default()
        }
    }

    fn post_json(addr: &str, path: &str, body: &str) -> http::ClientResponse {
        call(addr, "POST", path, body, Duration::from_secs(10)).expect("call succeeds")
    }

    fn get(addr: &str, path: &str) -> http::ClientResponse {
        call(addr, "GET", path, "", Duration::from_secs(10)).expect("call succeeds")
    }

    fn wait_done(addr: &str, id: u64) -> json::Value {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let response = get(addr, &format!("/jobs/{id}"));
            let doc = json::parse(&response.body).expect("status parses");
            if doc.get("state").and_then(|v| v.as_str()) == Some("done") {
                return doc;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "job {id} did not finish in time"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn submit_poll_and_metrics_round_trip() {
        let handle = start(test_config()).unwrap();
        let addr = handle.addr().to_string();
        let response = post_json(&addr, "/jobs", r#"{"circuit":"c432","deadline_ms":200}"#);
        assert_eq!(response.status, 202, "{}", response.body);
        let id = json::parse(&response.body)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_f64)
            .unwrap() as u64;
        let doc = wait_done(&addr, id);
        // c432's tree cannot exhaust in 200 ms: the deadline must map to
        // the typed degradation contract, still carrying a solution.
        assert_eq!(
            doc.get("outcome").and_then(|v| v.as_str()),
            Some("degraded"),
            "{doc}"
        );
        assert_eq!(
            doc.get("reason").and_then(|v| v.as_str()),
            Some("time budget expired")
        );
        assert!(doc.get("vector").is_some(), "degraded still has a solution");
        let metrics = get(&addr, "/metrics");
        assert_eq!(metrics.status, 200);
        assert!(
            metrics.body.contains("serve.jobs_admitted"),
            "{}",
            metrics.body
        );
        assert!(metrics.body.contains("serve.jobs_degraded"));
        handle.shutdown();
    }

    #[test]
    fn portfolio_jobs_report_a_winning_strategy() {
        let handle = start(test_config()).unwrap();
        let addr = handle.addr().to_string();
        let response = post_json(
            &addr,
            "/jobs",
            r#"{"circuit":"c432","mode":"portfolio","deadline_ms":300}"#,
        );
        assert_eq!(response.status, 202, "{}", response.body);
        let id = json::parse(&response.body)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_f64)
            .unwrap() as u64;
        let doc = wait_done(&addr, id);
        let outcome = doc.get("outcome").and_then(|v| v.as_str()).unwrap();
        assert!(outcome == "complete" || outcome == "degraded", "{doc}");
        let winner = doc.get("winner").and_then(|v| v.as_str()).unwrap();
        assert!(
            ["h1", "h2-influence", "h2-natural", "h2-reverse", "restarts"].contains(&winner)
                || winner.starts_with("exact"),
            "unexpected winner {winner}"
        );
        assert!(
            doc.get("vector").is_some(),
            "portfolio jobs carry a solution"
        );
        handle.shutdown();
    }

    #[test]
    fn bad_requests_get_typed_errors_not_crashes() {
        let handle = start(test_config()).unwrap();
        let addr = handle.addr().to_string();
        assert_eq!(post_json(&addr, "/jobs", "not json").status, 400);
        assert_eq!(post_json(&addr, "/jobs", "{}").status, 400);
        assert_eq!(
            post_json(&addr, "/jobs", r#"{"circuit":"no_such_circuit"}"#).status,
            202,
            "unknown circuits fail at run time, typed"
        );
        assert_eq!(get(&addr, "/jobs/999").status, 404);
        assert_eq!(get(&addr, "/nope").status, 404);
        let id = json::parse(&post_json(&addr, "/jobs", r#"{"circuit":"no_such_circuit"}"#).body)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_f64)
            .unwrap() as u64;
        let doc = wait_done(&addr, id);
        assert_eq!(doc.get("outcome").and_then(|v| v.as_str()), Some("failed"));
        assert!(doc
            .get("error")
            .and_then(|v| v.as_str())
            .unwrap_or_default()
            .contains("no_such_circuit"));
        handle.shutdown();
    }

    #[test]
    fn admission_control_rejects_beyond_queue_depth() {
        let config = ServerConfig {
            runners: 1,
            queue_depth: 2,
            default_deadline: Duration::from_millis(300),
            ..ServerConfig::default()
        };
        let handle = start(config).unwrap();
        let addr = handle.addr().to_string();
        // Flood with more jobs than the queue admits; at least one 503
        // must come back, and every 202 job must still terminate typed.
        let mut ids = Vec::new();
        let mut rejected = 0usize;
        for _ in 0..12 {
            let r = post_json(&addr, "/jobs", r#"{"circuit":"c432","deadline_ms":100}"#);
            match r.status {
                202 => ids.push(
                    json::parse(&r.body)
                        .unwrap()
                        .get("id")
                        .and_then(json::Value::as_f64)
                        .unwrap() as u64,
                ),
                503 => {
                    rejected += 1;
                    assert!(r.body.contains("queue full"), "{}", r.body);
                }
                other => panic!("unexpected status {other}"),
            }
        }
        assert!(rejected > 0, "the flood must trip admission control");
        for id in ids {
            let doc = wait_done(&addr, id);
            let outcome = doc.get("outcome").and_then(|v| v.as_str()).unwrap();
            assert!(outcome == "complete" || outcome == "degraded", "{doc}");
        }
        handle.shutdown();
    }

    #[test]
    fn cancel_endpoint_degrades_a_running_job() {
        let config = ServerConfig {
            default_deadline: Duration::from_secs(600),
            ..test_config()
        };
        let handle = start(config).unwrap();
        let addr = handle.addr().to_string();
        // An effectively unbounded deadline: only the cancel can end it.
        let id = json::parse(&post_json(&addr, "/jobs", r#"{"circuit":"c432"}"#).body)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_f64)
            .unwrap() as u64;
        // Give it a moment to start, then cancel.
        std::thread::sleep(Duration::from_millis(50));
        let response = post_json(&addr, &format!("/jobs/{id}/cancel"), "");
        assert_eq!(response.status, 200);
        let doc = wait_done(&addr, id);
        assert_eq!(
            doc.get("outcome").and_then(|v| v.as_str()),
            Some("degraded"),
            "{doc}"
        );
        assert_eq!(
            doc.get("reason").and_then(|v| v.as_str()),
            Some("cancelled")
        );
        handle.shutdown();
    }

    #[test]
    fn events_stream_is_jsonl_with_lifecycle_markers() {
        let handle = start(test_config()).unwrap();
        let addr = handle.addr().to_string();
        let id =
            json::parse(&post_json(&addr, "/jobs", r#"{"circuit":"c432","deadline_ms":150}"#).body)
                .unwrap()
                .get("id")
                .and_then(json::Value::as_f64)
                .unwrap() as u64;
        // The events call blocks until the job closes its buffer.
        let events = get(&addr, &format!("/jobs/{id}/events"));
        assert_eq!(events.status, 200);
        let mut names = Vec::new();
        for line in events.body.lines() {
            let doc = json::parse(line).expect("every event line parses");
            if let Some(name) = doc.get("name").and_then(|v| v.as_str()) {
                names.push(name.to_string());
            }
        }
        assert!(names.iter().any(|n| n == "job.queued"), "{names:?}");
        assert!(names.iter().any(|n| n == "job.started"), "{names:?}");
        assert!(names.iter().any(|n| n == "job.finished"), "{names:?}");
        assert!(
            names.iter().any(|n| n == "core.run"),
            "the optimizer trace streams through: {names:?}"
        );
        handle.shutdown();
    }

    #[test]
    fn shutdown_fails_queued_jobs_typed_and_joins_cleanly() {
        let config = ServerConfig {
            runners: 1,
            queue_depth: 8,
            default_deadline: Duration::from_secs(600),
            ..ServerConfig::default()
        };
        let handle = start(config).unwrap();
        let addr = handle.addr().to_string();
        // One long-running job plus several queued behind the single runner.
        let mut jobs = Vec::new();
        for _ in 0..4 {
            let r = post_json(&addr, "/jobs", r#"{"circuit":"c432"}"#);
            assert_eq!(r.status, 202);
            let id = json::parse(&r.body)
                .unwrap()
                .get("id")
                .and_then(json::Value::as_f64)
                .unwrap() as u64;
            jobs.push(handle.state.job(id).expect("registered"));
        }
        std::thread::sleep(Duration::from_millis(50));
        handle.shutdown();
        for job in jobs {
            let JobPhase::Done(result) = job.phase() else {
                panic!("job {} left untyped after shutdown", job.id);
            };
            assert!(
                result.outcome == "degraded" || result.outcome == "failed",
                "job {}: {}",
                job.id,
                result.outcome
            );
        }
    }

    fn submit(addr: &str, body: &str) -> u64 {
        let response = post_json(addr, "/jobs", body);
        assert_eq!(response.status, 202, "{}", response.body);
        json::parse(&response.body)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_f64)
            .unwrap() as u64
    }

    /// A generated circuit small enough that the exact search exhausts
    /// quickly but not instantly — crash/recovery needs jobs that can be
    /// caught mid-run.
    fn small_bench() -> String {
        use svtox_netlist::generators::{random_dag, RandomDagSpec};
        random_dag(&RandomDagSpec::new("serve-journal", 7, 4, 32, 5))
            .expect("spec is valid")
            .to_bench()
    }

    fn bench_job_body(bench: &str, threads: usize) -> String {
        json::Value::Obj(
            [
                ("bench".to_string(), json::Value::Str(bench.to_string())),
                ("deadline_ms".to_string(), json::Value::Num(30_000.0)),
                ("threads".to_string(), json::Value::Num(threads as f64)),
            ]
            .into_iter()
            .collect(),
        )
        .to_string()
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("svtox-serve-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// The acceptance sweep: kill a journaled server with jobs in flight,
    /// restart it on the same journal, and demand terminal states
    /// bit-identical to an uninterrupted run — at 1, 2 and 4 threads.
    #[test]
    fn crash_and_restart_resume_to_bit_identical_solutions_across_thread_counts() {
        let bench = small_bench();
        let reference = {
            let handle = start(test_config()).unwrap();
            let addr = handle.addr().to_string();
            let doc = wait_done(&addr, submit(&addr, &bench_job_body(&bench, 1)));
            handle.shutdown();
            doc
        };
        assert_eq!(
            reference.get("outcome").and_then(|v| v.as_str()),
            Some("complete"),
            "{reference}"
        );

        for threads in [1usize, 2, 4] {
            let dir = scratch_dir(&format!("crash-{threads}"));
            let durable = || ServerConfig {
                runners: 1,
                journal: Some(dir.clone()),
                ..test_config()
            };
            let handle = start(durable()).unwrap();
            let addr = handle.addr().to_string();
            let ids: Vec<u64> = (0..2)
                .map(|_| submit(&addr, &bench_job_body(&bench, threads)))
                .collect();
            // Let the single runner get into the first job, then die.
            std::thread::sleep(Duration::from_millis(25));
            handle.crash();

            let handle = start(durable()).unwrap();
            let addr = handle.addr().to_string();
            for &id in &ids {
                let doc = wait_done(&addr, id);
                for field in ["outcome", "vector", "choices", "leakage_bits", "delay_bits"] {
                    assert_eq!(
                        doc.get(field).and_then(|v| v.as_str()),
                        reference.get(field).and_then(|v| v.as_str()),
                        "threads={threads} job={id} field={field}"
                    );
                }
            }
            let metrics = get(&addr, "/metrics").body;
            assert!(
                metrics.contains("serve.journal.recovered_jobs"),
                "{metrics}"
            );
            handle.shutdown();
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// A journaled restart whose checkpoints were wiped must restart the
    /// affected jobs cold — counted, completed, never hung.
    #[test]
    fn missing_checkpoint_restarts_cold_and_counts_it() {
        let dir = scratch_dir("ckpt-missing");
        let durable = || ServerConfig {
            runners: 1,
            journal: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let handle = start(durable()).unwrap();
        let addr = handle.addr().to_string();
        let id = submit(&addr, r#"{"circuit":"c432","deadline_ms":2000}"#);
        // Let the job reach its running journal record, then die and
        // lose the checkpoint (a disk wipe between runs).
        std::thread::sleep(Duration::from_millis(100));
        handle.crash();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.to_string_lossy().contains(".ckpt") {
                std::fs::remove_file(path).ok();
            }
        }

        let handle = start(durable()).unwrap();
        let addr = handle.addr().to_string();
        let metrics = get(&addr, "/metrics").body;
        assert!(
            metrics.contains("serve.journal.checkpoint_missing"),
            "{metrics}"
        );
        let doc = wait_done(&addr, id);
        let outcome = doc.get("outcome").and_then(|v| v.as_str()).unwrap();
        assert!(outcome == "complete" || outcome == "degraded", "{doc}");
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Journal fsync faults must degrade durability loudly — never the
    /// service: the job still reaches a typed terminal state.
    #[test]
    fn journal_fsync_faults_degrade_loudly_while_jobs_complete() {
        let dir = scratch_dir("fsync-fault");
        let handle = start(ServerConfig {
            journal: Some(dir.clone()),
            fault_plan: Some("io.fsync:nth=1".to_string()),
            ..test_config()
        })
        .unwrap();
        let addr = handle.addr().to_string();
        let doc = wait_done(&addr, submit(&addr, &bench_job_body(&small_bench(), 1)));
        let outcome = doc.get("outcome").and_then(|v| v.as_str()).unwrap();
        assert!(
            outcome == "complete" || outcome == "degraded",
            "typed terminal state under journal faults: {doc}"
        );
        let metrics = get(&addr, "/metrics").body;
        assert!(metrics.contains("serve.journal.degraded"), "{metrics}");
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// One TCP connection, two requests: the second must be served on
    /// the same socket and counted as keep-alive reuse.
    #[test]
    fn keep_alive_connections_pipeline_requests_and_count_reuse() {
        let handle = start(test_config()).unwrap();
        let addr = handle.addr().to_string();
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let first = http::call_keep_alive(&mut stream, "GET", "/metrics", "").unwrap();
        assert_eq!(first.status, 200);
        let second = http::call_keep_alive(&mut stream, "GET", "/metrics", "").unwrap();
        assert_eq!(second.status, 200);
        assert!(
            second.body.contains("serve.http.keepalive_reuse"),
            "{}",
            second.body
        );
        handle.shutdown();
    }

    /// A client that starts a request and stalls (slow loris) must be
    /// answered 408 and counted — not allowed to pin the connection.
    #[test]
    fn slow_loris_partial_requests_get_408() {
        use std::io::{Read as _, Write as _};
        let handle = start(ServerConfig {
            io_timeout: Duration::from_millis(100),
            ..test_config()
        })
        .unwrap();
        let addr = handle.addr().to_string();
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(b"POST /jobs HTTP/1.1\r\nContent-Le")
            .unwrap();
        // Never finish the head; the server must answer, not hang.
        let mut response = String::new();
        let mut buf = [0u8; 1024];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => response.push_str(&String::from_utf8_lossy(&buf[..n])),
            }
        }
        assert!(response.starts_with("HTTP/1.1 408"), "{response}");
        let metrics = get(&addr, "/metrics").body;
        assert!(metrics.contains("serve.http.timeouts"), "{metrics}");
        handle.shutdown();
    }
}
