//! The job model: specs, lifecycle state, results, and event streams.
//!
//! A job is one optimization run. Its spec arrives as the JSON body of
//! `POST /jobs`, its lifecycle is `queued → running → done`, and its
//! terminal state always carries a typed outcome string mirroring
//! [`svtox_core::RunOutcome`] — `complete`, `degraded` (with the reason),
//! or `failed` (with the error). Progress events (the job's own
//! `svtox-obs` trace) accumulate in an in-memory buffer that
//! `GET /jobs/:id/events` tails as chunked JSONL.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use svtox_cells::{LibraryOptions, TradeoffPoints};
use svtox_core::{CancelToken, CheckpointSpec, Mode, Solution};
use svtox_obs::json;
use svtox_obs::EventSink;

/// What a client asked the server to optimize.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Built-in benchmark name (exactly one of `circuit`/`bench`).
    pub circuit: Option<String>,
    /// Inline `.bench` netlist text (exactly one of `circuit`/`bench`).
    pub bench: Option<String>,
    /// Edit script applied to the resolved netlist before optimizing
    /// (`add`/`remove`/`rewire`/`retag` lines — an ECO job). The edited
    /// netlist is cached across jobs by its post-edit content hash.
    pub edits: Option<String>,
    /// Delay penalty fraction (the JSON field is in percent, like the
    /// CLI's `--penalty`).
    pub penalty: f64,
    /// Optimization mode.
    pub mode: Mode,
    /// Run the strategy portfolio instead of the single-strategy engine
    /// (requested as `"mode":"portfolio"`).
    pub portfolio: bool,
    /// Engine worker threads for this job.
    pub threads: usize,
    /// Per-job deadline; `None` defers to the server default.
    pub deadline: Option<Duration>,
    /// Library options (`two_option`, `uniform_stack` JSON fields).
    pub library: LibraryOptions,
    /// Optional Liberty text to parse and cross-check (cached by hash).
    pub liberty: Option<String>,
    /// Monte-Carlo baseline vectors evaluated before the optimization
    /// (`0` skips the baseline).
    pub vectors: usize,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            circuit: None,
            bench: None,
            edits: None,
            penalty: 0.05,
            mode: Mode::Proposed,
            portfolio: false,
            threads: 1,
            deadline: None,
            library: LibraryOptions::default(),
            liberty: None,
            vectors: 0,
        }
    }
}

impl JobSpec {
    /// Parses a `POST /jobs` body.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for unknown fields, bad types, or a
    /// spec that names neither (or both of) `circuit` and `bench`.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let value = json::parse(body).map_err(|e| format!("body is not JSON: {e}"))?;
        let json::Value::Obj(fields) = &value else {
            return Err("body must be a JSON object".to_string());
        };
        let mut spec = Self::default();
        for (name, field) in fields {
            match name.as_str() {
                "circuit" => spec.circuit = Some(str_field(field, "circuit")?),
                "bench" => spec.bench = Some(str_field(field, "bench")?),
                "edits" => spec.edits = Some(str_field(field, "edits")?),
                "liberty" => spec.liberty = Some(str_field(field, "liberty")?),
                "penalty" => spec.penalty = num_field(field, "penalty")? / 100.0,
                "threads" => spec.threads = uint_field(field, "threads")?,
                "vectors" => spec.vectors = uint_field(field, "vectors")?,
                "deadline_ms" => {
                    // Checked end to end: `uint_field` already bounds the
                    // magnitude, and the usize → u64 conversion stays
                    // explicit so an absurd spec is a typed 400, never a
                    // silently clamped deadline.
                    let ms = u64::try_from(uint_field(field, "deadline_ms")?)
                        .map_err(|_| "`deadline_ms` is too large".to_string())?;
                    spec.deadline = Some(Duration::from_millis(ms));
                }
                "mode" => {
                    spec.mode = match str_field(field, "mode")?.as_str() {
                        "proposed" => Mode::Proposed,
                        "vt" => Mode::StateAndVt,
                        "state" => Mode::StateOnly,
                        "portfolio" => {
                            spec.portfolio = true;
                            Mode::Proposed
                        }
                        other => return Err(format!("unknown mode `{other}`")),
                    };
                }
                "two_option" => {
                    if bool_field(field, "two_option")? {
                        spec.library.tradeoff_points = TradeoffPoints::Two;
                    }
                }
                "uniform_stack" => {
                    spec.library.uniform_stack = bool_field(field, "uniform_stack")?;
                }
                other => return Err(format!("unknown field `{other}`")),
            }
        }
        match (&spec.circuit, &spec.bench) {
            (Some(_), Some(_)) => Err("give either `circuit` or `bench`, not both".to_string()),
            (None, None) => Err("a job needs a `circuit` name or `bench` text".to_string()),
            _ => Ok(spec),
        }
    }

    /// Serializes the spec for the write-ahead journal.
    ///
    /// Unlike the wire format (where `penalty` is a decimal percentage),
    /// the journal stores the resolved fraction as an `f64` **bit
    /// pattern** so a replayed job is bit-identical to the admitted one.
    /// Only wire-expressible library options (`two_option`,
    /// `uniform_stack`) are recorded — the rest of [`LibraryOptions`]
    /// cannot be set over HTTP.
    #[must_use]
    pub fn to_journal_value(&self) -> json::Value {
        let mut obj = BTreeMap::new();
        for (name, text) in [
            ("circuit", &self.circuit),
            ("bench", &self.bench),
            ("edits", &self.edits),
            ("liberty", &self.liberty),
        ] {
            if let Some(text) = text {
                obj.insert(name.to_string(), json::Value::Str(text.clone()));
            }
        }
        obj.insert(
            "penalty_bits".to_string(),
            json::Value::Str(format!("{:016x}", self.penalty.to_bits())),
        );
        let mode = match self.mode {
            Mode::Proposed => "proposed",
            Mode::StateAndVt => "vt",
            Mode::StateOnly => "state",
        };
        obj.insert("mode".to_string(), json::Value::Str(mode.to_string()));
        obj.insert("portfolio".to_string(), json::Value::Bool(self.portfolio));
        obj.insert("threads".to_string(), json::Value::Num(self.threads as f64));
        obj.insert("vectors".to_string(), json::Value::Num(self.vectors as f64));
        if let Some(deadline) = self.deadline {
            obj.insert(
                "deadline_ms".to_string(),
                json::Value::Num(deadline.as_millis() as f64),
            );
        }
        obj.insert(
            "two_option".to_string(),
            json::Value::Bool(self.library.tradeoff_points == TradeoffPoints::Two),
        );
        obj.insert(
            "uniform_stack".to_string(),
            json::Value::Bool(self.library.uniform_stack),
        );
        json::Value::Obj(obj)
    }

    /// Parses a journal `spec` object written by
    /// [`JobSpec::to_journal_value`]. `None` on any malformed field — the
    /// journal loader treats that as a torn record.
    #[must_use]
    pub fn from_journal_value(v: &json::Value) -> Option<Self> {
        let json::Value::Obj(_) = v else { return None };
        let mut spec = Self::default();
        let text = |name: &str| {
            v.get(name)
                .and_then(json::Value::as_str)
                .map(str::to_string)
        };
        spec.circuit = text("circuit");
        spec.bench = text("bench");
        spec.edits = text("edits");
        spec.liberty = text("liberty");
        spec.penalty =
            f64::from_bits(u64::from_str_radix(v.get("penalty_bits")?.as_str()?, 16).ok()?);
        spec.mode = match v.get("mode")?.as_str()? {
            "proposed" => Mode::Proposed,
            "vt" => Mode::StateAndVt,
            "state" => Mode::StateOnly,
            _ => return None,
        };
        spec.portfolio = matches!(v.get("portfolio"), Some(json::Value::Bool(true)));
        let uint = |name: &str| {
            let f = v.get(name)?.as_f64()?;
            (f.fract() == 0.0 && (0.0..=1e15).contains(&f)).then_some(f as usize)
        };
        spec.threads = uint("threads")?;
        spec.vectors = uint("vectors")?;
        spec.deadline = match v.get("deadline_ms") {
            Some(ms) => Some(Duration::from_millis(
                u64::try_from(uint_field(ms, "deadline_ms").ok()?).ok()?,
            )),
            None => None,
        };
        if matches!(v.get("two_option"), Some(json::Value::Bool(true))) {
            spec.library.tradeoff_points = TradeoffPoints::Two;
        }
        spec.library.uniform_stack =
            matches!(v.get("uniform_stack"), Some(json::Value::Bool(true)));
        if spec.circuit.is_some() == spec.bench.is_some() {
            return None;
        }
        Some(spec)
    }
}

fn str_field(v: &json::Value, name: &str) -> Result<String, String> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("`{name}` must be a string"))
}

fn num_field(v: &json::Value, name: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("`{name}` must be a number"))
}

fn uint_field(v: &json::Value, name: &str) -> Result<usize, String> {
    let n = num_field(v, name)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("`{name}` must be a non-negative integer"));
    }
    // Above 1e15 an f64 no longer represents every integer exactly, so a
    // cast could silently land on a neighbouring value — and no real spec
    // is anywhere near it. Name the actual failure instead of lumping it
    // in with "not an integer".
    if n > 1e15 {
        return Err(format!("`{name}` is too large (max 1e15)"));
    }
    Ok(n as usize)
}

fn bool_field(v: &json::Value, name: &str) -> Result<bool, String> {
    match v {
        json::Value::Bool(b) => Ok(*b),
        _ => Err(format!("`{name}` must be a boolean")),
    }
}

/// The bit-exact essentials of a solution, as reported over HTTP.
///
/// `leakage_bits`/`delay_bits` are the `f64` bit patterns in hex, so a
/// client can assert byte-identity with a local run without any float
/// formatting ambiguity.
#[derive(Debug, Clone)]
pub struct SolutionSummary {
    /// Standby vector as a `0`/`1` string, input order.
    pub vector: String,
    /// Per-gate option choices as decimal digits, gate order.
    pub choices: String,
    /// Total leakage in µA.
    pub leakage_ua: f64,
    /// Bit pattern of the leakage value.
    pub leakage_bits: u64,
    /// Bit pattern of the critical-path delay.
    pub delay_bits: u64,
    /// Leaves the search explored.
    pub leaves: u64,
    /// Engine wall-clock in milliseconds.
    pub runtime_ms: f64,
}

impl SolutionSummary {
    /// Extracts the summary of a solution.
    #[must_use]
    pub fn of(solution: &Solution) -> Self {
        Self {
            vector: solution
                .vector
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect(),
            choices: solution
                .choices
                .iter()
                .map(|c| char::from_digit(u32::from(*c), 10).unwrap_or('?'))
                .collect(),
            leakage_ua: solution.leakage.as_micro_amps(),
            leakage_bits: solution.leakage.value().to_bits(),
            delay_bits: solution.delay.value().to_bits(),
            leaves: solution.leaves_explored as u64,
            runtime_ms: solution.runtime.as_secs_f64() * 1e3,
        }
    }
}

/// The terminal state of a job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// `complete`, `degraded`, or `failed`.
    pub outcome: &'static str,
    /// The degradation reason, when degraded.
    pub reason: Option<String>,
    /// The error message, when failed.
    pub error: Option<String>,
    /// Resolved circuit name.
    pub circuit: String,
    /// The solution, for non-failed outcomes.
    pub solution: Option<SolutionSummary>,
    /// The winning strategy slug, for portfolio jobs.
    pub winner: Option<String>,
    /// Cells found in the submitted Liberty text, when one was sent.
    pub liberty_cells: Option<usize>,
    /// Random-vector average leakage in µA, when the spec asked for a
    /// Monte-Carlo baseline (`vectors > 0`).
    pub baseline_leakage_ua: Option<f64>,
}

/// Job lifecycle phase.
#[derive(Debug, Clone)]
pub enum JobPhase {
    /// Admitted, waiting for a runner.
    Queued,
    /// A runner is executing it.
    Running,
    /// Finished with a typed outcome (boxed: the result dwarfs the
    /// other variants).
    Done(Box<JobResult>),
}

impl JobPhase {
    /// The state name reported over HTTP.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done(_) => "done",
        }
    }
}

struct EventsBuf {
    lines: Vec<String>,
    closed: bool,
}

/// The shared, append-only event buffer of one job.
///
/// Producers push JSONL lines (the job's obs trace plus lifecycle
/// markers); any number of consumers tail it concurrently, blocking on a
/// condvar for new lines until the buffer closes.
#[derive(Clone)]
pub struct JobEvents {
    inner: Arc<(Mutex<EventsBuf>, Condvar)>,
}

impl Default for JobEvents {
    fn default() -> Self {
        Self::new()
    }
}

impl JobEvents {
    /// A fresh, open buffer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new((
                Mutex::new(EventsBuf {
                    lines: Vec::new(),
                    closed: false,
                }),
                Condvar::new(),
            )),
        }
    }

    /// Appends one line and wakes all tailing readers.
    pub fn push(&self, line: &str) {
        let (buf, signal) = &*self.inner;
        buf.lock()
            .expect("events lock")
            .lines
            .push(line.to_string());
        signal.notify_all();
    }

    /// Marks the stream finished; tailing readers drain and stop.
    pub fn close(&self) {
        let (buf, signal) = &*self.inner;
        buf.lock().expect("events lock").closed = true;
        signal.notify_all();
    }

    /// Returns the lines at index `from..` plus whether the buffer is
    /// closed, blocking up to `timeout` when nothing new is available.
    #[must_use]
    pub fn wait_from(&self, from: usize, timeout: Duration) -> (Vec<String>, bool) {
        let (lock, signal) = &*self.inner;
        let mut buf = lock.lock().expect("events lock");
        if buf.lines.len() <= from && !buf.closed {
            let (guard, _) = signal
                .wait_timeout(buf, timeout)
                .expect("events lock poisoned");
            buf = guard;
        }
        (buf.lines.get(from..).unwrap_or(&[]).to_vec(), buf.closed)
    }

    /// A snapshot of everything pushed so far.
    #[must_use]
    pub fn snapshot(&self) -> Vec<String> {
        self.inner.0.lock().expect("events lock").lines.clone()
    }
}

/// An [`EventSink`] adapter routing a job's obs trace into its buffer.
pub struct JobSink(pub JobEvents);

impl EventSink for JobSink {
    fn write_line(&mut self, line: &str) {
        self.0.push(line);
    }
}

/// One job in the server's registry.
pub struct JobRecord {
    /// Monotonically assigned id.
    pub id: u64,
    /// What to run.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub phase: Mutex<JobPhase>,
    /// Progress stream.
    pub events: JobEvents,
    /// Cancellation token linked into the job's budget.
    pub cancel: CancelToken,
    /// Where the run checkpoints (journaled servers only): fresh for new
    /// admissions, resume for jobs re-enqueued by crash recovery.
    pub checkpoint: Option<CheckpointSpec>,
}

impl JobRecord {
    /// A freshly admitted job.
    #[must_use]
    pub fn new(id: u64, spec: JobSpec) -> Self {
        Self::with_checkpoint(id, spec, None)
    }

    /// A job with an attached checkpoint spec.
    #[must_use]
    pub fn with_checkpoint(id: u64, spec: JobSpec, checkpoint: Option<CheckpointSpec>) -> Self {
        Self {
            id,
            spec,
            phase: Mutex::new(JobPhase::Queued),
            events: JobEvents::new(),
            cancel: CancelToken::new(),
            checkpoint,
        }
    }

    /// The current phase (cloned; the lock is not held).
    #[must_use]
    pub fn phase(&self) -> JobPhase {
        self.phase.lock().expect("phase lock").clone()
    }

    /// Transitions the phase.
    pub fn set_phase(&self, phase: JobPhase) {
        *self.phase.lock().expect("phase lock") = phase;
    }

    /// Renders the `GET /jobs/:id` status document.
    #[must_use]
    pub fn status_json(&self) -> json::Value {
        let phase = self.phase();
        let mut obj = BTreeMap::new();
        obj.insert("id".to_string(), json::Value::Num(self.id as f64));
        obj.insert(
            "state".to_string(),
            json::Value::Str(phase.name().to_string()),
        );
        if let JobPhase::Done(result) = &phase {
            obj.insert(
                "outcome".to_string(),
                json::Value::Str(result.outcome.to_string()),
            );
            obj.insert(
                "circuit".to_string(),
                json::Value::Str(result.circuit.clone()),
            );
            if let Some(reason) = &result.reason {
                obj.insert("reason".to_string(), json::Value::Str(reason.clone()));
            }
            if let Some(error) = &result.error {
                obj.insert("error".to_string(), json::Value::Str(error.clone()));
            }
            if let Some(winner) = &result.winner {
                obj.insert("winner".to_string(), json::Value::Str(winner.clone()));
            }
            if let Some(cells) = result.liberty_cells {
                obj.insert("liberty_cells".to_string(), json::Value::Num(cells as f64));
            }
            if let Some(baseline) = result.baseline_leakage_ua {
                obj.insert(
                    "baseline_leakage_ua".to_string(),
                    json::Value::Num(baseline),
                );
            }
            if let Some(s) = &result.solution {
                obj.insert("vector".to_string(), json::Value::Str(s.vector.clone()));
                obj.insert("choices".to_string(), json::Value::Str(s.choices.clone()));
                obj.insert("leakage_ua".to_string(), json::Value::Num(s.leakage_ua));
                obj.insert(
                    "leakage_bits".to_string(),
                    json::Value::Str(format!("{:016x}", s.leakage_bits)),
                );
                obj.insert(
                    "delay_bits".to_string(),
                    json::Value::Str(format!("{:016x}", s.delay_bits)),
                );
                obj.insert("leaves".to_string(), json::Value::Num(s.leaves as f64));
                obj.insert("runtime_ms".to_string(), json::Value::Num(s.runtime_ms));
            }
        }
        json::Value::Obj(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_the_full_field_set() {
        let spec = JobSpec::from_json(
            r#"{"circuit":"c432","penalty":10,"mode":"vt","threads":4,"vectors":512,
                "deadline_ms":250,"two_option":true,"uniform_stack":true}"#,
        )
        .unwrap();
        assert_eq!(spec.circuit.as_deref(), Some("c432"));
        assert!((spec.penalty - 0.10).abs() < 1e-12);
        assert_eq!(spec.mode, Mode::StateAndVt);
        assert_eq!(spec.threads, 4);
        assert_eq!(spec.vectors, 512);
        assert_eq!(spec.deadline, Some(Duration::from_millis(250)));
        assert_eq!(spec.library.tradeoff_points, TradeoffPoints::Two);
        assert!(spec.library.uniform_stack);
    }

    #[test]
    fn spec_parses_an_edit_script() {
        let spec = JobSpec::from_json(
            r#"{"circuit":"c432","edits":"add t = NAND(pi0, pi1)\nrewire w 0 t\n"}"#,
        )
        .unwrap();
        assert!(spec.edits.as_deref().unwrap().contains("rewire w 0 t"));
        assert!(JobSpec::from_json(r#"{"circuit":"c432","edits":7}"#).is_err());
    }

    #[test]
    fn spec_rejects_bad_bodies() {
        assert!(JobSpec::from_json("not json").is_err());
        assert!(JobSpec::from_json("[]").is_err());
        assert!(
            JobSpec::from_json("{}").is_err(),
            "neither circuit nor bench"
        );
        assert!(JobSpec::from_json(r#"{"circuit":"a","bench":"b"}"#).is_err());
        assert!(JobSpec::from_json(r#"{"circuit":"c432","mode":"banana"}"#).is_err());
        assert!(JobSpec::from_json(r#"{"circuit":"c432","threads":-1}"#).is_err());
        assert!(JobSpec::from_json(r#"{"circuit":"c432","threads":1.5}"#).is_err());
        assert!(JobSpec::from_json(r#"{"circuit":"c432","bogus":1}"#).is_err());
        assert!(JobSpec::from_json(r#"{"circuit":7}"#).is_err());
    }

    #[test]
    fn oversized_integers_get_their_own_error() {
        let err = JobSpec::from_json(r#"{"circuit":"c432","threads":1e16}"#).unwrap_err();
        assert!(err.contains("too large"), "got {err}");
        let err = JobSpec::from_json(r#"{"circuit":"c432","deadline_ms":2e18}"#).unwrap_err();
        assert!(err.contains("too large"), "got {err}");
        // The boundary itself still parses (and converts without clamping).
        let spec = JobSpec::from_json(r#"{"circuit":"c432","deadline_ms":1e15}"#).unwrap();
        assert_eq!(
            spec.deadline,
            Some(Duration::from_millis(1_000_000_000_000_000))
        );
        // Non-integers keep the original message.
        let err = JobSpec::from_json(r#"{"circuit":"c432","threads":1.5}"#).unwrap_err();
        assert!(err.contains("non-negative integer"), "got {err}");
    }

    #[test]
    fn portfolio_mode_sets_the_engine_flag() {
        let spec = JobSpec::from_json(r#"{"circuit":"c432","mode":"portfolio"}"#).unwrap();
        assert!(spec.portfolio);
        assert_eq!(spec.mode, Mode::Proposed);
        assert!(
            !JobSpec::from_json(r#"{"circuit":"c432"}"#)
                .unwrap()
                .portfolio
        );
    }

    #[test]
    fn events_buffer_tails_and_closes() {
        let events = JobEvents::new();
        events.push("{\"a\":1}");
        let (lines, closed) = events.wait_from(0, Duration::from_millis(1));
        assert_eq!(lines, vec!["{\"a\":1}".to_string()]);
        assert!(!closed);
        // A reader past the end blocks until the close arrives.
        let tail = events.clone();
        let reader = std::thread::spawn(move || tail.wait_from(1, Duration::from_secs(5)));
        events.push("{\"b\":2}");
        events.close();
        let (lines, closed) = reader.join().unwrap();
        assert_eq!(lines, vec!["{\"b\":2}".to_string()]);
        assert!(closed || !lines.is_empty());
    }

    #[test]
    fn status_json_carries_the_typed_outcome() {
        let record = JobRecord::new(7, JobSpec::from_json(r#"{"circuit":"c432"}"#).unwrap());
        assert_eq!(record.phase().name(), "queued");
        record.set_phase(JobPhase::Done(Box::new(JobResult {
            outcome: "degraded",
            reason: Some("time budget expired".to_string()),
            error: None,
            circuit: "c432".to_string(),
            solution: None,
            winner: None,
            liberty_cells: None,
            baseline_leakage_ua: None,
        })));
        let doc = record.status_json().to_string();
        let parsed = json::parse(&doc).unwrap();
        assert_eq!(parsed.get("state").and_then(|v| v.as_str()), Some("done"));
        assert_eq!(
            parsed.get("outcome").and_then(|v| v.as_str()),
            Some("degraded")
        );
        assert_eq!(
            parsed.get("reason").and_then(|v| v.as_str()),
            Some("time budget expired")
        );
    }
}
