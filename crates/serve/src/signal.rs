//! SIGINT → [`CancelToken`] bridge for graceful interruption.
//!
//! A long `svtox optimize` or a foreground `svtox serve` should treat
//! Ctrl-C the way it treats an expired deadline: stop cleanly with a
//! typed `Degraded { Cancelled }` (flushing the checkpoint on the way
//! out) instead of dying mid-write. The first SIGINT therefore only
//! cancels the process-wide token returned by [`sigint_token`]; a second
//! SIGINT means the user insists, and the process exits immediately with
//! the conventional status 130.
//!
//! This is the one place in the workspace that needs `unsafe`: installing
//! a C signal handler. The handler body is async-signal-safe — it touches
//! a single atomic and, on the second signal, calls `_exit`. A watcher
//! thread (not the handler) performs the actual token cancellation.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use svtox_exec::CancelToken;

static SIGINT_COUNT: AtomicU32 = AtomicU32::new(0);
static TOKEN: OnceLock<CancelToken> = OnceLock::new();

#[cfg(unix)]
mod sys {
    extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
        pub fn _exit(code: i32) -> !;
    }
    pub const SIGINT: i32 = 2;
}

#[cfg(unix)]
extern "C" fn on_sigint(_signum: i32) {
    // Async-signal-safe: one atomic op, and _exit on the second signal.
    if SIGINT_COUNT.fetch_add(1, Ordering::SeqCst) >= 1 {
        unsafe { sys::_exit(130) }
    }
}

/// Returns the process-wide SIGINT cancellation token, installing the
/// handler and its watcher thread on first use.
///
/// Link the token into a run with [`svtox_exec::Budget::linked`] (or
/// `ExecConfig::budget_linked`): the first Ctrl-C then surfaces as the
/// optimizer's ordinary `Degraded { Cancelled }` outcome. On platforms
/// without POSIX signals the token simply never fires.
pub fn sigint_token() -> CancelToken {
    TOKEN
        .get_or_init(|| {
            let token = CancelToken::new();
            #[cfg(unix)]
            install(token.clone());
            token
        })
        .clone()
}

/// How many SIGINTs have arrived so far (the second one exits).
#[must_use]
pub fn sigint_count() -> u32 {
    SIGINT_COUNT.load(Ordering::SeqCst)
}

#[cfg(unix)]
fn install(token: CancelToken) {
    let handler: extern "C" fn(i32) = on_sigint;
    unsafe {
        sys::signal(sys::SIGINT, handler as usize);
    }
    // The handler only bumps the counter; this thread turns the bump into
    // a token cancellation outside async-signal context.
    let spawned = std::thread::Builder::new()
        .name("svtox-sigint-watch".to_string())
        .spawn(move || loop {
            if SIGINT_COUNT.load(Ordering::SeqCst) > 0 {
                token.cancel();
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    // A failed spawn leaves Ctrl-C at its second-signal behaviour only;
    // nothing else to do without a watcher.
    drop(spawned);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn first_sigint_cancels_the_token() {
        let token = sigint_token();
        assert!(!token.is_cancelled());
        assert_eq!(sigint_count(), 0);
        // Deliver a real SIGINT to ourselves; the installed handler must
        // swallow it and the watcher must cancel the token.
        let status = std::process::Command::new("kill")
            .args(["-INT", &std::process::id().to_string()])
            .status()
            .expect("kill runs");
        assert!(status.success());
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !token.is_cancelled() {
            assert!(
                std::time::Instant::now() < deadline,
                "SIGINT never reached the token"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(sigint_count(), 1);
    }
}
