//! Cross-job caches keyed by content hash.
//!
//! Repeat traffic in a standby-power service hits the same cell
//! libraries and, often, the same netlists: a sweep over clustering or
//! penalty configurations re-submits near-identical jobs. The expensive
//! artifacts — the precharacterized cell tables of
//! [`svtox_cells::Library::new`], a parsed-and-mapped netlist, a parsed
//! Liberty leakage table — are therefore cached across jobs, keyed by an
//! FNV-1a hash of the exact content that determines them:
//!
//! * **libraries** — the canonical encoding of [`LibraryOptions`] (every
//!   field, floats by bit pattern), since characterization is a pure
//!   function of the options and the technology;
//! * **netlists** — the **post-strash structural hash** of a submitted
//!   `.bench` text (two spellings of the same circuit — renamed wires,
//!   reordered lines, commuted pins — share one cache entry), or the
//!   `name:` form of a built-in benchmark;
//! * **Liberty tables** — the submitted Liberty text.
//!
//! Each entry is built exactly once per key (single-flight): concurrent
//! cold requests for the same key block on the builder instead of
//! characterizing in parallel, which is what makes warm jobs measurably
//! faster than cold ones under load.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use svtox_cells::liberty::LeakageRows;
use svtox_cells::{parse_liberty_leakage, Library, LibraryOptions};
use svtox_netlist::generators::benchmark;
use svtox_netlist::{map_to_primitives, parse_bench, strash, EditScript, MappingOptions, Netlist};
use svtox_obs::Obs;
use svtox_tech::Technology;

/// FNV-1a 64-bit content hash (the workspace is dependency-free, and the
/// keys are trusted content, not adversarial input).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The canonical cache key of a library configuration.
#[must_use]
pub fn library_key(options: &LibraryOptions) -> u64 {
    let canonical = format!(
        "tech=predictive_65nm;points={:?};uniform={};reorder={};vt={:?};arity={};igate={:016x}",
        options.tradeoff_points,
        options.uniform_stack,
        options.pin_reordering,
        options.vt_site,
        options.max_arity,
        options.igate_significance.to_bits(),
    );
    fnv1a64(canonical.as_bytes())
}

/// A single-flight cache slot: the first thread to lock it builds, the
/// rest block and then read the finished value.
type Slot<T> = Arc<Mutex<Option<Arc<T>>>>;

struct SlotMap<T> {
    slots: Mutex<HashMap<u64, Slot<T>>>,
}

impl<T> SlotMap<T> {
    fn new() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Returns `(value, hit)`; `build` runs at most once per key across
    /// all threads unless it errors (a failed build leaves the slot
    /// empty so a later request can retry).
    fn get_or_build<E>(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<(Arc<T>, bool), E> {
        let slot = {
            let mut slots = self.slots.lock().expect("cache slot map lock");
            Arc::clone(
                slots
                    .entry(key)
                    .or_insert_with(|| Arc::new(Mutex::new(None))),
            )
        };
        let mut guard = slot.lock().expect("cache slot lock");
        if let Some(value) = guard.as_ref() {
            return Ok((Arc::clone(value), true));
        }
        let value = Arc::new(build()?);
        *guard = Some(Arc::clone(&value));
        Ok((value, false))
    }

    fn len(&self) -> usize {
        self.slots.lock().expect("cache slot map lock").len()
    }
}

/// The cross-job caches of one server instance.
pub struct SharedCaches {
    libraries: SlotMap<Library>,
    netlists: SlotMap<Netlist>,
    liberty: SlotMap<HashMap<String, LeakageRows>>,
    /// Memo from bench-text hash to the post-strash structural key, so
    /// byte-identical resubmissions skip the parse+strash keying pass.
    bench_keys: Mutex<HashMap<u64, u64>>,
}

impl Default for SharedCaches {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedCaches {
    /// Fresh, empty caches.
    #[must_use]
    pub fn new() -> Self {
        Self {
            libraries: SlotMap::new(),
            netlists: SlotMap::new(),
            liberty: SlotMap::new(),
            bench_keys: Mutex::new(HashMap::new()),
        }
    }

    /// The characterized library for `options`, building it on miss.
    ///
    /// # Errors
    ///
    /// Returns the characterization error on a cold miss that fails.
    pub fn library(
        &self,
        options: LibraryOptions,
        obs: &Obs,
    ) -> Result<Arc<Library>, svtox_cells::LibraryError> {
        let (lib, hit) = self.libraries.get_or_build(library_key(&options), || {
            Library::new(Technology::predictive_65nm(), options)
        })?;
        obs.add(
            if hit {
                "serve.cache.library_hits"
            } else {
                "serve.cache.library_misses"
            },
            1,
        );
        Ok(lib)
    }

    /// The parsed-and-mapped netlist for a submitted `.bench` text,
    /// cached by the **post-strash structural hash** of the mapped
    /// netlist. Two textual spellings of the same circuit — renamed
    /// wires, reordered lines, commuted input pins — hash to the same
    /// key and share one cache entry; such cross-spelling hits bump
    /// `serve.cache.netlist_dedup_hits`. The *stored* netlist is the
    /// un-strashed mapped form of whichever spelling arrived first, so
    /// optimization results stay bit-identical to a cold parse of that
    /// spelling. A text-hash memo skips the keying pass (parse + map +
    /// strash) for byte-identical resubmissions.
    ///
    /// # Errors
    ///
    /// Returns the parse or mapping error on a cold miss that fails.
    pub fn netlist_from_bench(
        &self,
        bench_text: &str,
        obs: &Obs,
    ) -> Result<Arc<Netlist>, svtox_netlist::NetlistError> {
        let text_key = fnv1a64(bench_text.as_bytes());
        let known = self
            .bench_keys
            .lock()
            .expect("bench-key memo lock")
            .get(&text_key)
            .copied();
        let (key, prepared) = match known {
            Some(key) => (key, None),
            None => {
                let raw = parse_bench(bench_text)?;
                let mapped = map_to_primitives(&raw, MappingOptions::default())?;
                let key = strash(&mapped).0.content_hash();
                (key, Some(mapped))
            }
        };
        let freshly_keyed = prepared.is_some();
        let (netlist, hit) = self.netlists.get_or_build(key, || {
            match prepared {
                Some(mapped) => Ok(mapped),
                // The memoized entry can only vanish if the cache were
                // ever evicted; rebuild from the text just in case.
                None => {
                    let raw = parse_bench(bench_text)?;
                    map_to_primitives(&raw, MappingOptions::default())
                }
            }
        })?;
        if hit && freshly_keyed {
            obs.add("serve.cache.netlist_dedup_hits", 1);
        }
        self.bench_keys
            .lock()
            .expect("bench-key memo lock")
            .insert(text_key, key);
        self.count_netlist(hit, obs);
        Ok(netlist)
    }

    /// A built-in benchmark reconstruction by name.
    ///
    /// # Errors
    ///
    /// Returns the generator error for an unknown name.
    pub fn netlist_named(
        &self,
        name: &str,
        obs: &Obs,
    ) -> Result<Arc<Netlist>, svtox_netlist::NetlistError> {
        let key = fnv1a64(format!("name:{name}").as_bytes());
        let (netlist, hit) = self.netlists.get_or_build(key, || benchmark(name))?;
        self.count_netlist(hit, obs);
        Ok(netlist)
    }

    /// The result of applying an edit script to an already-mapped
    /// netlist, cached by the **post-edit content hash** — so
    /// resubmitting the same edit script is a hit, and so are two
    /// different scripts that produce structurally identical netlists.
    ///
    /// # Errors
    ///
    /// Returns the script parse error or the edit application error
    /// (undefined signals, combinational cycles, …).
    pub fn netlist_edited(
        &self,
        base: &Netlist,
        edits_text: &str,
        obs: &Obs,
    ) -> Result<Arc<Netlist>, svtox_netlist::NetlistError> {
        let script = EditScript::parse(edits_text)?;
        let mut edited = base.clone();
        script.apply(&mut edited)?;
        // Drop the edit's dirty-net bookkeeping before sharing: the
        // cached artifact is a plain netlist, not an in-flight edit.
        let _ = edited.take_dirty();
        let key = edited.content_hash();
        let (netlist, hit) = self
            .netlists
            .get_or_build(key, || Ok::<_, svtox_netlist::NetlistError>(edited))?;
        self.count_netlist(hit, obs);
        obs.add(
            if hit {
                "serve.cache.eco_hits"
            } else {
                "serve.cache.eco_misses"
            },
            1,
        );
        Ok(netlist)
    }

    fn count_netlist(&self, hit: bool, obs: &Obs) {
        obs.add(
            if hit {
                "serve.cache.netlist_hits"
            } else {
                "serve.cache.netlist_misses"
            },
            1,
        );
    }

    /// The parsed leakage table of a Liberty text.
    ///
    /// # Errors
    ///
    /// Returns the Liberty parse error on a cold miss that fails.
    pub fn liberty(
        &self,
        text: &str,
        obs: &Obs,
    ) -> Result<Arc<HashMap<String, LeakageRows>>, svtox_cells::LibraryError> {
        let key = fnv1a64(text.as_bytes());
        let (rows, hit) = self
            .liberty
            .get_or_build(key, || parse_liberty_leakage(text))?;
        obs.add(
            if hit {
                "serve.cache.liberty_hits"
            } else {
                "serve.cache.liberty_misses"
            },
            1,
        );
        Ok(rows)
    }

    /// Distinct library configurations seen so far.
    #[must_use]
    pub fn libraries_cached(&self) -> usize {
        self.libraries.len()
    }

    /// Distinct netlists seen so far.
    #[must_use]
    pub fn netlists_cached(&self) -> usize {
        self.netlists.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn library_key_separates_configurations() {
        let base = LibraryOptions::default();
        let mut two = base;
        two.tradeoff_points = svtox_cells::TradeoffPoints::Two;
        let mut uniform = base;
        uniform.uniform_stack = true;
        assert_eq!(library_key(&base), library_key(&LibraryOptions::default()));
        assert_ne!(library_key(&base), library_key(&two));
        assert_ne!(library_key(&base), library_key(&uniform));
        assert_ne!(library_key(&two), library_key(&uniform));
    }

    #[test]
    fn second_library_request_is_a_hit_on_the_same_table() {
        let caches = SharedCaches::new();
        let obs = Obs::enabled();
        let cold = caches.library(LibraryOptions::default(), &obs).unwrap();
        let warm = caches.library(LibraryOptions::default(), &obs).unwrap();
        assert!(Arc::ptr_eq(&cold, &warm), "one characterization, shared");
        let counters = obs.counter_snapshot();
        assert_eq!(counters.get("serve.cache.library_misses"), Some(&1));
        assert_eq!(counters.get("serve.cache.library_hits"), Some(&1));
        assert_eq!(caches.libraries_cached(), 1);
    }

    #[test]
    fn bench_text_and_names_cache_by_content() {
        let caches = SharedCaches::new();
        let obs = Obs::enabled();
        let named = caches.netlist_named("c432", &obs).unwrap();
        let named_again = caches.netlist_named("c432", &obs).unwrap();
        assert!(Arc::ptr_eq(&named, &named_again));
        let text = named.to_bench();
        let parsed = caches.netlist_from_bench(&text, &obs).unwrap();
        let parsed_again = caches.netlist_from_bench(&text, &obs).unwrap();
        assert!(Arc::ptr_eq(&parsed, &parsed_again));
        assert_eq!(parsed.num_gates(), named.num_gates());
        let counters = obs.counter_snapshot();
        assert_eq!(counters.get("serve.cache.netlist_hits"), Some(&2));
        assert_eq!(counters.get("serve.cache.netlist_misses"), Some(&2));
        assert!(caches.netlist_named("no_such_circuit", &obs).is_err());
    }

    #[test]
    fn edited_netlists_cache_by_post_edit_content_hash() {
        let caches = SharedCaches::new();
        let obs = Obs::enabled();
        let base = caches.netlist_named("c432", &obs).unwrap();
        let pi0 = base.net(base.inputs()[0]).name().to_string();
        let pi1 = base.net(base.inputs()[1]).name().to_string();
        let script = format!("add eco_t = NAND({pi0}, {pi1})\n");
        let cold = caches.netlist_edited(&base, &script, &obs).unwrap();
        assert_eq!(cold.num_gates(), base.num_gates() + 1);
        // Resubmitting the same script hits the same entry.
        let warm = caches.netlist_edited(&base, &script, &obs).unwrap();
        assert!(Arc::ptr_eq(&cold, &warm));
        // A trailing comment changes the text but not the post-edit
        // netlist: content-hash keying still hits.
        let commented = format!("{script}# no functional change\n");
        let same = caches.netlist_edited(&base, &commented, &obs).unwrap();
        assert!(Arc::ptr_eq(&cold, &same));
        let counters = obs.counter_snapshot();
        assert_eq!(counters.get("serve.cache.eco_misses"), Some(&1));
        assert_eq!(counters.get("serve.cache.eco_hits"), Some(&2));
        // Bad scripts surface as typed errors, not cache poison.
        assert!(caches
            .netlist_edited(&base, "add x = NAND(nope)", &obs)
            .is_err());
        assert!(caches.netlist_edited(&base, "garbage line", &obs).is_err());
    }

    #[test]
    fn failed_builds_do_not_poison_the_slot() {
        let caches = SharedCaches::new();
        let obs = Obs::enabled();
        assert!(caches.netlist_from_bench("not a bench file", &obs).is_err());
        // Same key, still an error — but not a cached panic or stale Ok.
        assert!(caches.netlist_from_bench("not a bench file", &obs).is_err());
    }

    #[test]
    fn liberty_tables_cache_by_text_hash() {
        let caches = SharedCaches::new();
        let obs = Obs::enabled();
        let lib = caches.library(LibraryOptions::default(), &obs).unwrap();
        let text = svtox_cells::to_liberty(&lib);
        let cold = caches.liberty(&text, &obs).unwrap();
        let warm = caches.liberty(&text, &obs).unwrap();
        assert!(Arc::ptr_eq(&cold, &warm));
        assert!(!cold.is_empty(), "the exported library has cells");
        let counters = obs.counter_snapshot();
        assert_eq!(counters.get("serve.cache.liberty_hits"), Some(&1));
        assert_eq!(counters.get("serve.cache.liberty_misses"), Some(&1));
    }
}
