//! Restart-friendly listener binding.
//!
//! The kill-restart-resume flow rebinds the **same** port seconds after
//! the old process died. Server-side sockets that closed first sit in
//! `TIME_WAIT`, and a plain `TcpListener::bind` then fails with
//! `EADDRINUSE` for up to a minute — exactly the window a recovering
//! server must come back in. The standard fix is `SO_REUSEADDR` before
//! `bind`, which `std` has no portable API for, so this module makes the
//! three raw libc calls itself (socket → setsockopt → bind+listen) for
//! IPv4 addresses on Unix, and falls back to `TcpListener::bind` — same
//! behaviour as before, minus fast rebind — for anything else or on any
//! syscall failure.
//!
//! Like [`crate::signal`], this is deliberately-contained `unsafe`: a
//! handful of POSIX calls with constant arguments, immediately wrapped
//! back into safe `std` types via `FromRawFd`.

#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddr, TcpListener};

/// Binds a listener on `addr` with `SO_REUSEADDR` when possible.
///
/// # Errors
///
/// Whatever `TcpListener::bind` reports — the raw path never fails the
/// call on its own, it only falls back.
pub fn bind_reuse(addr: SocketAddr) -> io::Result<TcpListener> {
    #[cfg(unix)]
    if let SocketAddr::V4(v4) = addr {
        if let Some(listener) = unix::bind_reuse_v4(v4) {
            return Ok(listener);
        }
    }
    TcpListener::bind(addr)
}

#[cfg(unix)]
mod unix {
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::fd::{FromRawFd, RawFd};

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const BACKLOG: i32 = 128;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const u32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// `struct sockaddr_in`: family, then port and address in network
    /// byte order.
    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    /// The raw socket/setsockopt/bind/listen sequence. `None` on any
    /// failure — the caller falls back to `TcpListener::bind`, which
    /// will produce the user-facing error.
    pub fn bind_reuse_v4(addr: SocketAddrV4) -> Option<TcpListener> {
        let fd: RawFd = unsafe { socket(AF_INET, SOCK_STREAM, 0) };
        if fd < 0 {
            return None;
        }
        let close_and_bail = || {
            unsafe { close(fd) };
            None
        };
        let on: u32 = 1;
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEADDR,
                &on,
                std::mem::size_of::<u32>() as u32,
            )
        };
        if rc != 0 {
            return close_and_bail();
        }
        let sockaddr = SockaddrIn {
            sin_family: AF_INET as u16,
            sin_port: addr.port().to_be(),
            sin_addr: u32::from_ne_bytes(addr.ip().octets()),
            sin_zero: [0; 8],
        };
        let rc = unsafe { bind(fd, &sockaddr, std::mem::size_of::<SockaddrIn>() as u32) };
        if rc != 0 {
            return close_and_bail();
        }
        if unsafe { listen(fd, BACKLOG) } != 0 {
            return close_and_bail();
        }
        // From here the fd is owned by the listener (closed on drop).
        Some(unsafe { TcpListener::from_raw_fd(fd) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn reuse_listener_accepts_and_rebinds_immediately() {
        let listener = bind_reuse("127.0.0.1:0".parse().unwrap()).expect("bind an ephemeral port");
        let addr = listener.local_addr().unwrap();

        // The listener actually serves traffic.
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut byte = [0u8; 1];
            conn.read_exact(&mut byte).expect("read");
            conn.write_all(&byte).expect("echo");
            // Server closes first: this side enters TIME_WAIT.
        });
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(b"x").unwrap();
        let mut echo = [0u8; 1];
        client.read_exact(&mut echo).unwrap();
        assert_eq!(&echo, b"x");
        drop(client);
        server.join().unwrap();

        // Immediate rebind of the very same port — the whole point.
        let again = bind_reuse(addr).expect("rebind while TIME_WAIT drains");
        assert_eq!(again.local_addr().unwrap(), addr);
    }
}
