//! Journal replay: turning a crashed server's journal back into jobs.
//!
//! Recovery is a pure fold over the JSONL records of
//! [`crate::journal`]. It is **truncation tolerant** in the checkpoint
//! style: the replay consumes well-formed records until the first
//! malformed or torn line and then stops, flagging the tear — a crash
//! mid-append loses at most the record being written, never the jobs
//! before it. Only an unreadable header is a hard error (unknown
//! version, not-a-journal): that file was written by someone else, and
//! guessing at it would be worse than starting cold.
//!
//! Replay semantics, record by record:
//!
//! * `admit` — registers the job. Duplicates are first-wins (the
//!   compacted prefix is authoritative; a duplicate can only appear if
//!   a compaction raced a crash).
//! * `checkpoint` / `state` — update the named job; ids never admitted
//!   are skipped (their admit record tore off).
//! * `done` — attaches the terminal result, first-wins again: a job
//!   cannot un-finish.

use std::path::Path;

use svtox_fault::Fault;
use svtox_obs::json;

use crate::job::{JobResult, JobSpec};
use crate::journal::{result_from_value, JOURNAL_VERSION};

/// The lifecycle point a job had reached when the journal stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveredState {
    /// Admitted, never started: re-enqueue cold.
    Queued,
    /// Mid-run when the process died: re-enqueue with a resume
    /// checkpoint so the warm frontier is not re-searched.
    Running,
    /// Finished with a recorded terminal result: re-register as done so
    /// clients polling across the restart still get their answer.
    Done,
}

/// One job reconstructed from the journal.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The journal-assigned id (preserved across the restart).
    pub id: u64,
    /// The admitted spec, bit-identical to the original.
    pub spec: JobSpec,
    /// Where its lifecycle stopped.
    pub state: RecoveredState,
    /// Checkpoint file name relative to the journal directory, if one
    /// was recorded.
    pub checkpoint: Option<String>,
    /// The terminal result, for [`RecoveredState::Done`] jobs.
    pub result: Option<JobResult>,
}

/// Everything a restarting server learns from its journal.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Replayed jobs in admission order.
    pub jobs: Vec<RecoveredJob>,
    /// First id the restarted server may assign (`max + 1`).
    pub next_id: u64,
    /// Whether the replay stopped at a torn or malformed line.
    pub torn_tail: bool,
    /// Records successfully replayed.
    pub records: usize,
}

impl Recovery {
    /// An empty recovery (no journal, or an empty one).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            next_id: 1,
            ..Self::default()
        }
    }
}

/// Replays the journal at `path`.
///
/// A missing file is a clean cold start ([`Recovery::empty`]); reads go
/// through the fault handle so `io.read` / `io.truncate` plans exercise
/// this path too.
///
/// # Errors
///
/// A readable file whose header is not a version-[`JOURNAL_VERSION`]
/// journal, or an I/O error other than "not found". The caller treats
/// this as "journal unusable": degrade, don't crash.
pub fn replay(path: &Path, fault: &Fault) -> Result<Recovery, String> {
    let text = match fault.read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Recovery::empty()),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    let mut lines = text.lines();
    let Some(header) = lines.next() else {
        return Ok(Recovery::empty());
    };
    match json::parse(header) {
        Ok(v) if v.get("type").and_then(json::Value::as_str) == Some("journal") => {
            let version = v.get("version").and_then(json::Value::as_f64);
            if version != Some(JOURNAL_VERSION as f64) {
                return Err(format!(
                    "unsupported journal version {:?} (this build reads {JOURNAL_VERSION})",
                    version
                ));
            }
        }
        _ => {
            return Err(format!(
                "{} does not start with a journal header",
                path.display()
            ))
        }
    }

    let mut recovery = Recovery::empty();
    for line in lines {
        let Ok(record) = json::parse(line) else {
            recovery.torn_tail = true;
            break;
        };
        if !apply(&mut recovery, &record) {
            recovery.torn_tail = true;
            break;
        }
        recovery.records += 1;
    }
    recovery.next_id = recovery.jobs.iter().map(|j| j.id).max().unwrap_or(0) + 1;
    Ok(recovery)
}

/// Applies one record; `false` means the record is malformed (torn).
fn apply(recovery: &mut Recovery, record: &json::Value) -> bool {
    let id = |r: &json::Value| {
        let f = r.get("id")?.as_f64()?;
        (f.fract() == 0.0 && (0.0..=1e15).contains(&f)).then_some(f as u64)
    };
    match record.get("type").and_then(json::Value::as_str) {
        Some("admit") => {
            let Some(id) = id(record) else { return false };
            let Some(spec) = record.get("spec").and_then(JobSpec::from_journal_value) else {
                return false;
            };
            if recovery.jobs.iter().all(|j| j.id != id) {
                recovery.jobs.push(RecoveredJob {
                    id,
                    spec,
                    state: RecoveredState::Queued,
                    checkpoint: None,
                    result: None,
                });
            }
            true
        }
        Some("checkpoint") => {
            let Some(id) = id(record) else { return false };
            let Some(path) = record.get("path").and_then(json::Value::as_str) else {
                return false;
            };
            if let Some(job) = recovery.jobs.iter_mut().find(|j| j.id == id) {
                job.checkpoint = Some(path.to_string());
            }
            true
        }
        Some("state") => {
            let Some(id) = id(record) else { return false };
            let state = match record.get("state").and_then(json::Value::as_str) {
                Some("queued") => RecoveredState::Queued,
                Some("running") => RecoveredState::Running,
                _ => return false,
            };
            if let Some(job) = recovery
                .jobs
                .iter_mut()
                .find(|j| j.id == id && j.state != RecoveredState::Done)
            {
                job.state = state;
            }
            true
        }
        Some("done") => {
            let Some(id) = id(record) else { return false };
            let Some(result) = record.get("result").and_then(result_from_value) else {
                return false;
            };
            if let Some(job) = recovery
                .jobs
                .iter_mut()
                .find(|j| j.id == id && j.state != RecoveredState::Done)
            {
                job.state = RecoveredState::Done;
                job.result = Some(result);
            }
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_file(tag: &str, text: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("svtox-recovery-{tag}-{}.jsonl", std::process::id()));
        std::fs::write(&path, text).expect("write temp journal");
        path
    }

    const SPEC: &str = r#"{"circuit":"c432","mode":"proposed","penalty_bits":"3fa999999999999a","portfolio":false,"threads":2,"vectors":0,"two_option":false,"uniform_stack":false}"#;

    fn admit(id: u64) -> String {
        format!("{{\"type\":\"admit\",\"id\":{id},\"spec\":{SPEC}}}\n")
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        let recovered = replay(
            Path::new("/nonexistent/journal.jsonl"),
            Fault::disabled_ref(),
        )
        .expect("missing journal is fine");
        assert!(recovered.jobs.is_empty());
        assert_eq!(recovered.next_id, 1);
        assert!(!recovered.torn_tail);
    }

    #[test]
    fn full_lifecycle_replays() {
        let text = format!(
            "{{\"type\":\"journal\",\"version\":1}}\n{}{}{}{}",
            admit(1),
            "{\"type\":\"checkpoint\",\"id\":1,\"path\":\"job-1.ckpt\"}\n",
            "{\"type\":\"state\",\"id\":1,\"state\":\"running\"}\n",
            admit(4),
        );
        let path = temp_file("lifecycle", &text);
        let recovered = replay(&path, Fault::disabled_ref()).unwrap();
        assert_eq!(recovered.jobs.len(), 2);
        assert_eq!(recovered.jobs[0].state, RecoveredState::Running);
        assert_eq!(recovered.jobs[0].checkpoint.as_deref(), Some("job-1.ckpt"));
        assert_eq!(recovered.jobs[1].id, 4);
        assert_eq!(recovered.jobs[1].state, RecoveredState::Queued);
        assert_eq!(recovered.next_id, 5);
        assert!(!recovered.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_stops_cleanly_and_keeps_the_prefix() {
        let text = format!(
            "{{\"type\":\"journal\",\"version\":1}}\n{}{{\"type\":\"adm",
            admit(1)
        );
        let path = temp_file("torn", &text);
        let recovered = replay(&path, Fault::disabled_ref()).unwrap();
        assert_eq!(recovered.jobs.len(), 1);
        assert!(recovered.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_records_are_first_wins() {
        let done =
            "{\"type\":\"done\",\"id\":1,\"result\":{\"outcome\":\"failed\",\"error\":\"first\",\"circuit\":\"c432\"}}\n";
        let done2 =
            "{\"type\":\"done\",\"id\":1,\"result\":{\"outcome\":\"complete\",\"circuit\":\"c432\"}}\n";
        let text = format!(
            "{{\"type\":\"journal\",\"version\":1}}\n{}{}{done}{done2}",
            admit(1),
            admit(1)
        );
        let path = temp_file("dups", &text);
        let recovered = replay(&path, Fault::disabled_ref()).unwrap();
        assert_eq!(recovered.jobs.len(), 1, "duplicate admit collapsed");
        assert_eq!(recovered.jobs[0].state, RecoveredState::Done);
        let result = recovered.jobs[0].result.as_ref().unwrap();
        assert_eq!(result.outcome, "failed", "first terminal record wins");
        assert_eq!(result.error.as_deref(), Some("first"));
        assert!(!recovered.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_version_is_a_typed_error() {
        let path = temp_file("version", "{\"type\":\"journal\",\"version\":99}\n");
        let err = replay(&path, Fault::disabled_ref()).unwrap_err();
        assert!(err.contains("version"), "got: {err}");
        let path2 = temp_file("notjournal", "{\"type\":\"meta\",\"version\":1}\n");
        let err = replay(&path2, Fault::disabled_ref()).unwrap_err();
        assert!(err.contains("header"), "got: {err}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn records_for_unknown_ids_are_skipped_not_fatal() {
        let text = format!(
            "{{\"type\":\"journal\",\"version\":1}}\n{}{}",
            "{\"type\":\"state\",\"id\":9,\"state\":\"running\"}\n",
            admit(2)
        );
        let path = temp_file("unknown-id", &text);
        let recovered = replay(&path, Fault::disabled_ref()).unwrap();
        assert_eq!(recovered.jobs.len(), 1);
        assert_eq!(recovered.jobs[0].id, 2);
        assert!(!recovered.torn_tail);
        std::fs::remove_file(&path).ok();
    }
}
