//! svtox-serve: the long-running optimization service.
//!
//! A standby-power flow is rarely one invocation: a sweep over penalty
//! fractions, library configurations, and circuits re-runs the same
//! expensive setup (library characterization, netlist parsing) dozens of
//! times. This crate turns the engine into a service so that setup is
//! paid once and shared:
//!
//! * [`server`] — a dependency-free HTTP/1.1 server: `POST /jobs`
//!   (netlist + constraints + budget), `GET /jobs/:id` (status + bit-exact
//!   result), `GET /jobs/:id/events` (chunked JSONL progress, straight
//!   from the job's `svtox-obs` trace), `POST /jobs/:id/cancel`, and
//!   `GET /metrics` (the aggregated counter/gauge registry);
//! * [`cache`] — cross-job single-flight caches keyed by content hash:
//!   characterized libraries, parsed netlists, Liberty tables;
//! * [`job`] — the job model: spec parsing, lifecycle, typed terminal
//!   outcomes mirroring `svtox_core::RunOutcome`;
//! * [`loadgen`] — a client-side load generator replaying N concurrent
//!   jobs and reporting throughput, latency percentiles, and cache wins;
//! * [`journal`] / [`recovery`] — the write-ahead job journal
//!   (`--journal DIR`): admissions, state transitions, and terminal
//!   outcomes as append-only JSONL, replayed on restart so a killed
//!   server re-enqueues queued jobs and resumes running ones warm from
//!   their checkpoints;
//! * [`http`] — the minimal HTTP/1.1 reader/writer both sides share;
//! * [`net`] — the `SO_REUSEADDR` listener that lets a restarted server
//!   rebind its port while the old connections drain in `TIME_WAIT`;
//! * [`signal`] — the SIGINT-to-`CancelToken` bridge that makes Ctrl-C a
//!   typed `Degraded { Cancelled }` instead of a mid-write death.
//!
//! The service contract is the engine's degradation contract, extended
//! over the wire: every admitted job terminates in a typed outcome —
//! under overload the bounded queue sheds load with 503s, a deadline or a
//! cancel degrades the job to its best-so-far solution, and an engine
//! failure is reported, never swallowed. The chaos scenarios in the CLI
//! assert exactly this under injected faults and vanishing clients.

// `deny`, not the workspace-usual `forbid`: the signal module carries the
// workspace's only `unsafe` (installing a C signal handler) under a
// module-level allow, which `forbid` would make unoverridable.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod job;
pub mod journal;
pub mod loadgen;
pub mod net;
pub mod recovery;
pub mod server;
pub mod signal;

pub use cache::SharedCaches;
pub use job::{JobPhase, JobRecord, JobResult, JobSpec, SolutionSummary};
pub use journal::Journal;
pub use loadgen::{LoadReport, LoadgenConfig};
pub use recovery::{RecoveredJob, RecoveredState, Recovery};
pub use server::{start, ServerConfig, ServerHandle};
pub use signal::sigint_token;
