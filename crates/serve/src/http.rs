//! A minimal, dependency-free HTTP/1.1 layer.
//!
//! Only what the job service needs: request-line + header parsing with a
//! bounded `Content-Length` body on the server side, fixed-length and
//! chunked (`Transfer-Encoding: chunked`) responses, and a small blocking
//! client for the load generator and the chaos scenarios.
//!
//! Connections default to `Connection: close` — one-shot connections
//! keep the failure domain of a dropped client to a single request. A
//! client that explicitly sends `Connection: keep-alive` may pipeline
//! further requests on the same socket ([`Request::keep_alive`]); the
//! server still closes after streaming endpoints, and a connection that
//! *starts* a request but stops feeding bytes is a slow-loris, answered
//! with 408 ([`RequestError::TimedOut`] with `partial: true`) rather
//! than holding a handler thread.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on the header block (request or response) in bytes.
const MAX_HEAD: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, uppercase (`GET`, `POST`, …).
    pub method: String,
    /// The request path, query string included.
    pub path: String,
    /// The body, empty when no `Content-Length` was sent.
    pub body: String,
    /// The client sent `Connection: keep-alive` and may pipeline another
    /// request on this socket after the response.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The socket failed mid-request (a dropped client); there is nobody
    /// left to answer.
    Io(io::Error),
    /// The bytes were not a well-formed request; answer 400.
    Malformed(String),
    /// The declared body exceeds the configured bound; answer 413.
    TooLarge(usize),
    /// The read timeout expired. `partial: true` means bytes of a
    /// request had already arrived and then stopped — a slow-loris,
    /// answered with 408; `partial: false` is an idle keep-alive
    /// connection with nothing in flight, closed silently.
    TimedOut {
        /// Whether part of a request was already on the socket.
        partial: bool,
    },
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Malformed(why) => write!(f, "malformed request: {why}"),
            Self::TooLarge(n) => write!(f, "body of {n} bytes exceeds the limit"),
            Self::TimedOut { partial: true } => f.write_str("timed out mid-request"),
            Self::TimedOut { partial: false } => f.write_str("timed out while idle"),
        }
    }
}

/// Whether an I/O error is a read-timeout expiry (both kinds occur,
/// platform-dependent, for `SO_RCVTIMEO`).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Reads one request from the stream, honouring its read timeout.
///
/// # Errors
///
/// See [`RequestError`] — I/O errors mean the client is gone, the other
/// two variants deserve an error response.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, RequestError> {
    let (head, mut leftover) = read_head(stream)?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| RequestError::Malformed("missing method".into()))?
        .to_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing path".into()))?
        .to_string();
    let mut content_length = 0usize;
    let mut keep_alive = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Malformed("bad content-length".into()))?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    if content_length > max_body {
        return Err(RequestError::TooLarge(content_length));
    }
    while leftover.len() < content_length {
        let mut buf = [0u8; 4096];
        let n = match stream.read(&mut buf) {
            Ok(n) => n,
            // The head arrived, the body is dripping: slow-loris.
            Err(e) if is_timeout(&e) => return Err(RequestError::TimedOut { partial: true }),
            Err(e) => return Err(e.into()),
        };
        if n == 0 {
            return Err(RequestError::Malformed("body shorter than declared".into()));
        }
        leftover.extend_from_slice(&buf[..n]);
    }
    leftover.truncate(content_length);
    let body = String::from_utf8(leftover)
        .map_err(|_| RequestError::Malformed("body is not UTF-8".into()))?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// Reads up to and including the blank line; returns (head, body bytes
/// already pulled off the socket).
fn read_head(stream: &mut TcpStream) -> Result<(String, Vec<u8>), RequestError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    loop {
        if let Some(pos) = find_blank_line(&buf) {
            let head = String::from_utf8(buf[..pos].to_vec())
                .map_err(|_| RequestError::Malformed("header block is not UTF-8".into()))?;
            return Ok((head, buf[pos + 4..].to_vec()));
        }
        if buf.len() > MAX_HEAD {
            return Err(RequestError::Malformed("header block too large".into()));
        }
        let mut chunk = [0u8; 1024];
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if is_timeout(&e) => {
                return Err(RequestError::TimedOut {
                    partial: !buf.is_empty(),
                })
            }
            Err(e) => return Err(e.into()),
        };
        if n == 0 {
            if buf.is_empty() {
                // A clean close with nothing in flight: the keep-alive
                // peer is simply done. Not a malformed request.
                return Err(RequestError::Io(io::ErrorKind::UnexpectedEof.into()));
            }
            return Err(RequestError::Malformed(
                "connection closed mid-request".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length `Connection: close` response and
/// flushes it.
///
/// # Errors
///
/// Returns the socket error if the client disappeared mid-write.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write_response_conn(stream, status, content_type, body, false)
}

/// [`write_response`] with an explicit connection disposition:
/// `keep_alive: true` advertises `Connection: keep-alive` so the client
/// may pipeline the next request on the same socket.
///
/// # Errors
///
/// Returns the socket error if the client disappeared mid-write.
pub fn write_response_conn(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A chunked-transfer response writer for streaming endpoints.
///
/// Every [`ChunkedWriter::write_chunk`] is flushed immediately so a
/// tailing client sees progress as it happens; a write error means the
/// client disconnected, which the caller treats as "stop streaming",
/// never as a job failure.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the chunk writer.
    ///
    /// # Errors
    ///
    /// Returns the socket error if the head cannot be written.
    pub fn begin(stream: &'a mut TcpStream, status: u16, content_type: &str) -> io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            reason(status),
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(Self { stream })
    }

    /// Sends one chunk (skipped when empty: an empty chunk ends the
    /// stream in the chunked encoding).
    ///
    /// # Errors
    ///
    /// Returns the socket error if the client is gone.
    pub fn write_chunk(&mut self, data: &str) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data.as_bytes())?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Sends the terminating zero-length chunk.
    ///
    /// # Errors
    ///
    /// Returns the socket error if the client is gone.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A parsed client-side response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The numeric status code.
    pub status: u16,
    /// The decoded body (chunked transfers are reassembled).
    pub body: String,
}

/// One blocking HTTP call: connect, send, read the full response.
///
/// # Errors
///
/// Returns an `io::Error` for connection failures, timeouts, or a
/// response that does not parse.
pub fn call(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(&mut stream)
}

/// Sends one request on an already-connected stream with
/// `Connection: keep-alive` and reads the response, leaving the socket
/// open for the next call — the client side of request pipelining.
///
/// # Errors
///
/// Returns an `io::Error` for socket failures or a malformed response.
pub fn call_keep_alive(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<ClientResponse> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(stream)
}

fn bad(why: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, why.to_string())
}

/// Reads and decodes a full response from the stream.
///
/// # Errors
///
/// Returns an `io::Error` when the response is truncated or malformed.
pub fn read_response(stream: &mut TcpStream) -> io::Result<ClientResponse> {
    let (head, leftover) = read_head(stream).map_err(|e| match e {
        RequestError::Io(io) => io,
        other => bad(&other.to_string()),
    })?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value.parse().ok();
            } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            }
        }
    }
    let mut raw = leftover;
    if chunked {
        // Chunked streams end with the zero chunk; read until it (or EOF,
        // which the Connection: close contract also permits).
        loop {
            if let Some(decoded) = decode_chunked(&raw) {
                return Ok(ClientResponse {
                    status,
                    body: String::from_utf8(decoded).map_err(|_| bad("body is not UTF-8"))?,
                });
            }
            let mut buf = [0u8; 4096];
            let n = stream.read(&mut buf)?;
            if n == 0 {
                return Err(bad("chunked response truncated"));
            }
            raw.extend_from_slice(&buf[..n]);
        }
    }
    match content_length {
        Some(len) => {
            while raw.len() < len {
                let mut buf = [0u8; 4096];
                let n = stream.read(&mut buf)?;
                if n == 0 {
                    return Err(bad("body shorter than declared"));
                }
                raw.extend_from_slice(&buf[..n]);
            }
            raw.truncate(len);
        }
        None => {
            // No length and not chunked: read to EOF (close-delimited).
            let mut rest = Vec::new();
            stream.read_to_end(&mut rest)?;
            raw.extend_from_slice(&rest);
        }
    }
    Ok(ClientResponse {
        status,
        body: String::from_utf8(raw).map_err(|_| bad("body is not UTF-8"))?,
    })
}

/// Decodes a complete chunked body; `None` while the zero chunk has not
/// arrived yet.
fn decode_chunked(raw: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    loop {
        let line_end = raw[pos..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .map(|p| pos + p)?;
        let size_text = std::str::from_utf8(&raw[pos..line_end]).ok()?;
        let size = usize::from_str_radix(size_text.trim(), 16).ok()?;
        let data_start = line_end + 2;
        if size == 0 {
            return Some(out);
        }
        if raw.len() < data_start + size + 2 {
            return None;
        }
        out.extend_from_slice(&raw[data_start..data_start + size]);
        pos = data_start + size + 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trips one request/response pair over a real socket.
    fn exchange(
        server: impl FnOnce(TcpStream) + Send + 'static,
        client: impl FnOnce(&str) -> ClientResponse,
    ) -> ClientResponse {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            server(stream);
        });
        let response = client(&addr);
        handle.join().unwrap();
        response
    }

    #[test]
    fn fixed_length_round_trip() {
        let response = exchange(
            |mut stream| {
                let req = read_request(&mut stream, 1024).unwrap();
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/jobs");
                assert_eq!(req.body, "{\"circuit\":\"c432\"}");
                write_response(&mut stream, 202, "application/json", "{\"id\":1}").unwrap();
            },
            |addr| {
                call(
                    addr,
                    "POST",
                    "/jobs",
                    "{\"circuit\":\"c432\"}",
                    Duration::from_secs(5),
                )
                .unwrap()
            },
        );
        assert_eq!(response.status, 202);
        assert_eq!(response.body, "{\"id\":1}");
    }

    #[test]
    fn chunked_round_trip_reassembles() {
        let response = exchange(
            |mut stream| {
                let _ = read_request(&mut stream, 1024).unwrap();
                let mut w = ChunkedWriter::begin(&mut stream, 200, "application/jsonl").unwrap();
                w.write_chunk("{\"a\":1}\n").unwrap();
                w.write_chunk("{\"b\":2}\n").unwrap();
                w.finish().unwrap();
            },
            |addr| call(addr, "GET", "/events", "", Duration::from_secs(5)).unwrap(),
        );
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn oversized_body_is_a_typed_rejection() {
        exchange(
            |mut stream| {
                let err = read_request(&mut stream, 8).unwrap_err();
                assert!(matches!(err, RequestError::TooLarge(_)), "{err}");
                write_response(&mut stream, 413, "application/json", "{}").unwrap();
            },
            |addr| {
                let r = call(
                    addr,
                    "POST",
                    "/jobs",
                    "{\"bench\":\"far too large\"}",
                    Duration::from_secs(5),
                )
                .unwrap();
                assert_eq!(r.status, 413);
                r
            },
        );
    }

    #[test]
    fn half_request_then_disconnect_is_an_error_not_a_hang() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"POST /jobs HTTP/1.1\r\nContent-Le")
                .unwrap();
            // Dropping the stream closes it mid-header.
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let err = read_request(&mut stream, 1024).unwrap_err();
        assert!(
            matches!(err, RequestError::Malformed(_) | RequestError::Io(_)),
            "{err}"
        );
        client.join().unwrap();
    }

    #[test]
    fn malformed_request_line_is_rejected() {
        let response = exchange(
            |mut stream| {
                let err = read_request(&mut stream, 1024).unwrap_err();
                assert!(matches!(err, RequestError::Malformed(_)));
                write_response(&mut stream, 400, "text/plain", "bad").unwrap();
            },
            |addr| {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.write_all(b"\r\n\r\n").unwrap();
                read_response(&mut stream).unwrap()
            },
        );
        assert_eq!(response.status, 400);
    }
}
