//! The load generator: replays N concurrent jobs against a server and
//! reports throughput, latency percentiles, and cache effectiveness.
//!
//! The generator is the service's acceptance harness: it floods the
//! bounded queue (exercising admission control: 503s are retried, not
//! errors), watches every job to a typed terminal outcome, and flags any
//! job that fails to terminate inside a generous hang timeout. The first
//! job runs alone ("cold", paying library characterization); the rest run
//! at the configured concurrency ("warm", riding the cross-job caches) —
//! the cold-versus-warm split in the report is what makes the cache win
//! visible.
//!
//! Connection failures are retried with bounded, seeded-jitter backoff
//! ([`Backoff`]): a refused or reset connection is what a restarting
//! server looks like from the outside, and the generator is expected to
//! ride across a kill-restart window (the `ci.sh` recovery smoke does
//! exactly that). Exhausting the retry budget is a typed `failed`
//! sample, never a hang.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use svtox_exec::rng::{derive_seed, Xoshiro256pp};
use svtox_obs::json;

use crate::http::{call, ClientResponse};
use crate::server::{start, ServerConfig};

/// What to replay, and where.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target server address; `None` spawns an in-process server (and
    /// shuts it down at the end).
    pub addr: Option<String>,
    /// Total jobs to submit.
    pub jobs: usize,
    /// Client worker threads submitting concurrently.
    pub concurrency: usize,
    /// Built-in benchmark to submit (ignored when `bench` is set).
    pub circuit: Option<String>,
    /// Inline `.bench` text to submit instead of a named circuit.
    pub bench: Option<String>,
    /// Per-job deadline sent with every spec.
    pub deadline: Duration,
    /// Engine threads requested per job.
    pub threads: usize,
    /// Delay penalty in percent (the wire format of `penalty`).
    pub penalty_pct: f64,
    /// Monte-Carlo baseline vectors requested per job (`0` skips the
    /// baseline). The packed word-level estimator makes a few hundred
    /// vectors per job cheap, so the default mix includes them.
    pub vectors: usize,
    /// A job not terminating within this bound counts as a hang.
    pub hang_timeout: Duration,
    /// Seed for the deterministic retry-backoff jitter (each worker
    /// derives its own stream from it).
    pub retry_seed: u64,
    /// Configuration for the spawned server when `addr` is `None`.
    pub server: ServerConfig,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: None,
            jobs: 20,
            concurrency: 8,
            circuit: Some("c432".to_string()),
            bench: None,
            deadline: Duration::from_millis(200),
            threads: 1,
            penalty_pct: 5.0,
            vectors: 256,
            hang_timeout: Duration::from_secs(60),
            retry_seed: 7,
            server: ServerConfig::default(),
        }
    }
}

/// Bounded exponential backoff with deterministic, seeded jitter.
///
/// Doubles from 5 ms up to a 250 ms ceiling, multiplied by a jitter in
/// `[0.5, 1.5)` drawn from a per-worker xoshiro stream — deterministic
/// for a given seed, but de-synchronized across workers so a restarted
/// server is not hit by every client on the same tick.
struct Backoff {
    rng: Xoshiro256pp,
    attempt: u32,
    limit: u32,
}

impl Backoff {
    /// Consecutive connection failures tolerated before giving up.
    const LIMIT: u32 = 10;

    fn new(seed: u64, stream: u64) -> Self {
        Self {
            rng: Xoshiro256pp::seed_from_u64(derive_seed(seed, stream)),
            attempt: 0,
            limit: Self::LIMIT,
        }
    }

    /// Records a failure; `Some(delay)` to sleep and retry, `None` when
    /// the budget is exhausted.
    fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.limit {
            return None;
        }
        let base_ms = (5u64 << self.attempt.min(6)).min(250) as f64;
        self.attempt += 1;
        let jitter = self.rng.gen_range_f64(0.5, 1.5);
        Some(Duration::from_secs_f64(base_ms * jitter / 1e3))
    }

    /// A success: the peer is reachable again, future failures start a
    /// fresh budget.
    fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// The outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs finishing `complete`.
    pub completed: usize,
    /// Jobs finishing `degraded` (deadline or cancel — still typed).
    pub degraded: usize,
    /// Jobs finishing `failed` (typed error).
    pub failed: usize,
    /// Jobs that never reached a terminal state inside the hang timeout.
    /// The degradation contract demands this stays zero under any load.
    pub hangs: usize,
    /// 503 admission rejections that were retried (load shedding at the
    /// queue bound, not failures).
    pub rejected_retries: usize,
    /// Connection failures (refused/reset) that were retried with
    /// backoff — nonzero when the load spanned a server restart.
    pub connect_retries: usize,
    /// `serve.journal.recovery_ms` gauge after the run, when the target
    /// server replayed a journal at startup.
    pub recovery_ms: Option<f64>,
    /// `serve.journal.degraded` counter after the run (journal write
    /// faults observed by the server).
    pub journal_degraded: u64,
    /// Wall clock for the whole run, milliseconds.
    pub wall_ms: f64,
    /// Jobs per second over the wall clock.
    pub throughput_jobs_per_s: f64,
    /// Median submit-to-done latency, milliseconds. `None` when no job
    /// produced a sample — an absent stat, not a zero-millisecond one.
    pub p50_ms: Option<f64>,
    /// 90th-percentile latency.
    pub p90_ms: Option<f64>,
    /// 99th-percentile latency.
    pub p99_ms: Option<f64>,
    /// Worst latency.
    pub max_ms: Option<f64>,
    /// Latency of the first, solo job (pays characterization).
    pub cold_ms: Option<f64>,
    /// Median latency of the remaining, cache-warm jobs. `None` for a
    /// single-job run, where every job is cold.
    pub warm_p50_ms: Option<f64>,
    /// `serve.cache.library_hits` after the run (spawned servers only).
    pub library_hits: u64,
    /// `serve.cache.library_misses` after the run.
    pub library_misses: u64,
    /// `serve.cache.netlist_hits` after the run.
    pub netlist_hits: u64,
    /// `serve.cache.netlist_misses` after the run.
    pub netlist_misses: u64,
    /// Whether `GET /metrics` answered 200 with the serve counters.
    pub metrics_ok: bool,
    /// Whether the spawned server joined all threads on shutdown
    /// (`true` trivially when targeting an external server).
    pub clean_shutdown: bool,
}

impl LoadReport {
    /// Renders the report as a JSON object.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut obj = BTreeMap::new();
        let mut num = |name: &str, v: f64| {
            obj.insert(name.to_string(), json::Value::Num(v));
        };
        num("jobs", self.jobs as f64);
        num("completed", self.completed as f64);
        num("degraded", self.degraded as f64);
        num("failed", self.failed as f64);
        num("hangs", self.hangs as f64);
        num("rejected_retries", self.rejected_retries as f64);
        num("connect_retries", self.connect_retries as f64);
        num("journal_degraded", self.journal_degraded as f64);
        num("wall_ms", self.wall_ms);
        num("throughput_jobs_per_s", self.throughput_jobs_per_s);
        num("library_hits", self.library_hits as f64);
        num("library_misses", self.library_misses as f64);
        num("netlist_hits", self.netlist_hits as f64);
        num("netlist_misses", self.netlist_misses as f64);
        // Absent latency stats are omitted rather than reported as 0.0:
        // a fake "0 ms warm p50" on an all-cold run reads as an
        // impossibly fast cache, not as "no data".
        for (name, v) in [
            ("recovery_ms", self.recovery_ms),
            ("p50_ms", self.p50_ms),
            ("p90_ms", self.p90_ms),
            ("p99_ms", self.p99_ms),
            ("max_ms", self.max_ms),
            ("cold_ms", self.cold_ms),
            ("warm_p50_ms", self.warm_p50_ms),
        ] {
            if let Some(v) = v {
                obj.insert(name.to_string(), json::Value::Num(v));
            }
        }
        obj.insert("metrics_ok".to_string(), json::Value::Bool(self.metrics_ok));
        obj.insert(
            "clean_shutdown".to_string(),
            json::Value::Bool(self.clean_shutdown),
        );
        json::Value::Obj(obj).to_string()
    }

    /// Renders a human-readable summary. Absent latency stats print as
    /// `n/a`, never as a fake `0.0`.
    #[must_use]
    pub fn render_text(&self) -> String {
        fn ms(v: Option<f64>) -> String {
            v.map_or_else(|| "n/a".to_string(), |v| format!("{v:.1}"))
        }
        format!(
            "loadgen: {} jobs in {:.0} ms ({:.1} jobs/s)\n\
             outcomes: {} complete, {} degraded, {} failed, {} hangs\n\
             admission: {} retried 503s; connections: {} backoff retries\n\
             recovery: {} ms journal replay, {} journal degradations\n\
             latency ms: p50 {}, p90 {}, p99 {}, max {}\n\
             cache: cold {} ms, warm p50 {} ms; library {}/{} hits, netlist {}/{} hits\n\
             metrics {}, shutdown {}\n",
            self.jobs,
            self.wall_ms,
            self.throughput_jobs_per_s,
            self.completed,
            self.degraded,
            self.failed,
            self.hangs,
            self.rejected_retries,
            self.connect_retries,
            ms(self.recovery_ms),
            self.journal_degraded,
            ms(self.p50_ms),
            ms(self.p90_ms),
            ms(self.p99_ms),
            ms(self.max_ms),
            ms(self.cold_ms),
            ms(self.warm_p50_ms),
            self.library_hits,
            self.library_hits + self.library_misses,
            self.netlist_hits,
            self.netlist_hits + self.netlist_misses,
            if self.metrics_ok { "ok" } else { "FAILED" },
            if self.clean_shutdown {
                "clean"
            } else {
                "UNCLEAN"
            },
        )
    }
}

struct Sample {
    outcome: &'static str,
    latency: Duration,
}

struct Shared {
    samples: Mutex<Vec<Sample>>,
    rejected: AtomicUsize,
    connect_retries: AtomicUsize,
    next: AtomicUsize,
}

/// Runs the load and returns the report.
///
/// # Errors
///
/// Returns the bind error when spawning an in-process server fails; the
/// load itself never errors — client-visible failures become typed
/// entries in the report.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadReport> {
    let spawned = match &config.addr {
        Some(_) => None,
        None => Some(start(config.server.clone())?),
    };
    let addr = match (&config.addr, &spawned) {
        (Some(addr), _) => addr.clone(),
        (None, Some(handle)) => handle.addr().to_string(),
        (None, None) => unreachable!("no addr and no spawned server"),
    };
    let body = job_body(config);
    let shared = Shared {
        samples: Mutex::new(Vec::with_capacity(config.jobs)),
        rejected: AtomicUsize::new(0),
        connect_retries: AtomicUsize::new(0),
        next: AtomicUsize::new(1),
    };

    let started = Instant::now();
    let mut cold_ms = None;
    if config.jobs > 0 {
        // The first job runs alone: it pays the cold caches.
        let sample = submit_and_wait(&addr, &body, config.hang_timeout, &shared, 0, config);
        cold_ms = Some(sample.latency.as_secs_f64() * 1e3);
        shared.samples.lock().expect("samples lock").push(sample);
    }
    if config.jobs > 1 {
        let workers = config.concurrency.clamp(1, config.jobs - 1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = shared.next.fetch_add(1, Ordering::Relaxed);
                    if index >= config.jobs {
                        return;
                    }
                    let sample = submit_and_wait(
                        &addr,
                        &body,
                        config.hang_timeout,
                        &shared,
                        index as u64,
                        config,
                    );
                    shared.samples.lock().expect("samples lock").push(sample);
                });
            }
        });
    }
    let wall = started.elapsed();

    let metrics = call(&addr, "GET", "/metrics", "", Duration::from_secs(10)).ok();
    let metrics_ok = metrics
        .as_ref()
        .is_some_and(|m| m.status == 200 && m.body.contains("serve.jobs_admitted"));
    let counters = metrics
        .as_ref()
        .map(|m| parse_metrics(&m.body))
        .unwrap_or_default();

    let clean_shutdown = match spawned {
        Some(handle) => {
            handle.shutdown();
            true
        }
        None => true,
    };

    let samples = shared.samples.into_inner().expect("samples lock");
    let mut latencies: Vec<f64> = samples
        .iter()
        .map(|s| s.latency.as_secs_f64() * 1e3)
        .collect();
    latencies.sort_by(f64::total_cmp);
    let mut warm: Vec<f64> = samples
        .iter()
        .skip(1)
        .map(|s| s.latency.as_secs_f64() * 1e3)
        .collect();
    warm.sort_by(f64::total_cmp);
    let count = |outcome: &str| samples.iter().filter(|s| s.outcome == outcome).count();

    Ok(LoadReport {
        jobs: samples.len(),
        completed: count("complete"),
        degraded: count("degraded"),
        failed: count("failed"),
        hangs: count("hang"),
        rejected_retries: shared.rejected.load(Ordering::Relaxed),
        connect_retries: shared.connect_retries.load(Ordering::Relaxed),
        recovery_ms: counters
            .get("serve.journal.recovery_ms")
            .map(|&ms| ms as f64),
        journal_degraded: counters.get("serve.journal.degraded").copied().unwrap_or(0),
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_jobs_per_s: if wall.as_secs_f64() > 0.0 {
            samples.len() as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        p50_ms: percentile(&latencies, 50.0),
        p90_ms: percentile(&latencies, 90.0),
        p99_ms: percentile(&latencies, 99.0),
        max_ms: latencies.last().copied(),
        cold_ms,
        warm_p50_ms: percentile(&warm, 50.0),
        library_hits: counters
            .get("serve.cache.library_hits")
            .copied()
            .unwrap_or(0),
        library_misses: counters
            .get("serve.cache.library_misses")
            .copied()
            .unwrap_or(0),
        netlist_hits: counters
            .get("serve.cache.netlist_hits")
            .copied()
            .unwrap_or(0),
        netlist_misses: counters
            .get("serve.cache.netlist_misses")
            .copied()
            .unwrap_or(0),
        metrics_ok,
        clean_shutdown,
    })
}

fn job_body(config: &LoadgenConfig) -> String {
    let mut obj = BTreeMap::new();
    if let Some(bench) = &config.bench {
        obj.insert("bench".to_string(), json::Value::Str(bench.clone()));
    } else if let Some(circuit) = &config.circuit {
        obj.insert("circuit".to_string(), json::Value::Str(circuit.clone()));
    }
    obj.insert(
        "deadline_ms".to_string(),
        json::Value::Num(config.deadline.as_millis() as f64),
    );
    obj.insert(
        "threads".to_string(),
        json::Value::Num(config.threads.max(1) as f64),
    );
    obj.insert("penalty".to_string(), json::Value::Num(config.penalty_pct));
    if config.vectors > 0 {
        obj.insert(
            "vectors".to_string(),
            json::Value::Num(config.vectors as f64),
        );
    }
    json::Value::Obj(obj).to_string()
}

/// Submits one job and follows it to a terminal state. Every path ends in
/// a typed sample; "hang" is the one the acceptance criteria forbid.
///
/// Connection failures retry on the worker's [`Backoff`] — bounded, so a
/// server that is *gone* produces a typed `failed` sample, while one
/// that is *restarting* is reconnected to within the budget.
fn submit_and_wait(
    addr: &str,
    body: &str,
    hang_timeout: Duration,
    shared: &Shared,
    job_index: u64,
    config: &LoadgenConfig,
) -> Sample {
    let started = Instant::now();
    let give_up = started + hang_timeout;
    let io_timeout = Duration::from_secs(10);
    let mut backoff = Backoff::new(config.retry_seed, job_index);
    let retry = |backoff: &mut Backoff| -> bool {
        match backoff.next_delay() {
            Some(delay) => {
                shared.connect_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(delay);
                true
            }
            None => false,
        }
    };

    // Submission: retry 503 (admission control shedding load) and
    // connection failures until admitted, out of retries, or out of time.
    let id = loop {
        if Instant::now() >= give_up {
            return Sample {
                outcome: "hang",
                latency: started.elapsed(),
            };
        }
        match call(addr, "POST", "/jobs", body, io_timeout) {
            Ok(ClientResponse { status: 202, body }) => {
                match json::parse(&body)
                    .ok()
                    .and_then(|doc| doc.get("id").and_then(json::Value::as_f64))
                {
                    Some(id) => break id as u64,
                    None => {
                        return Sample {
                            outcome: "failed",
                            latency: started.elapsed(),
                        }
                    }
                }
            }
            Ok(ClientResponse { status: 503, .. }) => {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                backoff.reset();
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok(_) => {
                return Sample {
                    outcome: "failed",
                    latency: started.elapsed(),
                }
            }
            Err(_) => {
                if !retry(&mut backoff) {
                    return Sample {
                        outcome: "failed",
                        latency: started.elapsed(),
                    };
                }
            }
        }
    };

    // Follow the job to its typed end.
    backoff.reset();
    let path = format!("/jobs/{id}");
    loop {
        if Instant::now() >= give_up {
            return Sample {
                outcome: "hang",
                latency: started.elapsed(),
            };
        }
        match call(addr, "GET", &path, "", io_timeout) {
            Ok(ClientResponse { status: 200, body }) => {
                backoff.reset();
                let doc = json::parse(&body).ok();
                let state = doc
                    .as_ref()
                    .and_then(|d| d.get("state"))
                    .and_then(json::Value::as_str)
                    .unwrap_or("");
                if state == "done" {
                    let outcome = match doc
                        .as_ref()
                        .and_then(|d| d.get("outcome"))
                        .and_then(json::Value::as_str)
                    {
                        Some("complete") => "complete",
                        Some("degraded") => "degraded",
                        _ => "failed",
                    };
                    return Sample {
                        outcome,
                        latency: started.elapsed(),
                    };
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(_) => {
                // A non-200 status answer (e.g. a restarted server that
                // lost this job to a degraded journal): poll on, the hang
                // timeout bounds us.
                backoff.reset();
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                if !retry(&mut backoff) {
                    return Sample {
                        outcome: "failed",
                        latency: started.elapsed(),
                    };
                }
            }
        }
    }
}

/// Parses the `/metrics` plain-text rendering (`  name value` lines).
fn parse_metrics(text: &str) -> BTreeMap<String, u64> {
    let mut counters = BTreeMap::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        if let (Some(name), Some(value)) = (parts.next(), parts.next()) {
            if let Ok(value) = value.parse::<u64>() {
                counters.insert(name.to_string(), value);
            }
        }
    }
    counters
}

fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        // No samples means no percentile — returning 0.0 here used to
        // masquerade as a real (and spectacular) latency downstream.
        return None;
    }
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    Some(sorted[rank.round() as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A netlist small enough that every job completes inside its
    /// deadline, so the storm exercises throughput, not timeouts.
    const TINY_BENCH: &str = "\
# tiny loadgen circuit
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n1 = NAND(a, b)
n2 = NOR(b, c)
y = AND(n1, n2)
";

    #[test]
    fn percentiles_pick_from_the_sorted_tail() {
        let data = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert!((percentile(&data, 50.0).unwrap() - 3.0).abs() < 1e-9);
        assert!((percentile(&data, 99.0).unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(percentile(&[], 50.0), None, "empty samples have no p50");
    }

    #[test]
    fn empty_latency_stats_report_as_absent_not_zero() {
        let report = LoadReport {
            jobs: 1,
            completed: 1,
            degraded: 0,
            failed: 0,
            hangs: 0,
            rejected_retries: 0,
            connect_retries: 0,
            recovery_ms: None,
            journal_degraded: 0,
            wall_ms: 12.0,
            throughput_jobs_per_s: 1.0,
            p50_ms: Some(12.0),
            p90_ms: Some(12.0),
            p99_ms: Some(12.0),
            max_ms: Some(12.0),
            cold_ms: Some(12.0),
            warm_p50_ms: None,
            library_hits: 0,
            library_misses: 1,
            netlist_hits: 0,
            netlist_misses: 1,
            metrics_ok: true,
            clean_shutdown: true,
        };
        let text = report.render_text();
        assert!(text.contains("warm p50 n/a ms"), "got {text}");
        assert!(!text.contains("warm p50 0.0"), "got {text}");
        let parsed = json::parse(&report.render_json()).unwrap();
        assert!(parsed.get("warm_p50_ms").is_none(), "omitted in JSON");
        assert_eq!(
            parsed.get("cold_ms").and_then(json::Value::as_f64),
            Some(12.0)
        );
    }

    #[test]
    fn metrics_text_parses_into_counters() {
        let parsed = parse_metrics("  serve.jobs_admitted          12\n  core.leaves 99\n");
        assert_eq!(parsed.get("serve.jobs_admitted"), Some(&12));
        assert_eq!(parsed.get("core.leaves"), Some(&99));
    }

    #[test]
    fn a_small_storm_terminates_typed_with_cache_hits() {
        let config = LoadgenConfig {
            jobs: 8,
            concurrency: 4,
            circuit: None,
            bench: Some(TINY_BENCH.to_string()),
            deadline: Duration::from_secs(10),
            server: ServerConfig {
                runners: 4,
                ..ServerConfig::default()
            },
            ..LoadgenConfig::default()
        };
        let report = run(&config).expect("loadgen runs");
        assert_eq!(report.jobs, 8);
        assert_eq!(report.hangs, 0, "{}", report.render_text());
        assert_eq!(report.completed, 8, "{}", report.render_text());
        assert!(report.metrics_ok);
        assert!(report.clean_shutdown);
        // One characterization, shared by everyone after the cold job.
        assert_eq!(report.library_misses, 1);
        assert_eq!(report.library_hits, 7);
        assert_eq!(report.netlist_misses, 1);
        assert_eq!(report.netlist_hits, 7);
        let parsed = json::parse(&report.render_json()).expect("report JSON parses");
        assert_eq!(parsed.get("hangs").and_then(json::Value::as_f64), Some(0.0));
    }
}
