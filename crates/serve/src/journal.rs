//! The write-ahead job journal: append-only JSONL durability for serve.
//!
//! A journaled server (`--journal DIR`) records every job's lifecycle so
//! a crashed process can be restarted without forgetting admitted work:
//!
//! * `{"type":"journal","version":1}` — the header line;
//! * `{"type":"admit","id":N,"spec":{..}}` — the full spec, written
//!   **before** the client sees its 202 (write-ahead: an acknowledged job
//!   is a recorded job);
//! * `{"type":"checkpoint","id":N,"path":"job-N.ckpt"}` — where the
//!   run's search frontier persists (portfolio members add `.SLUG`
//!   siblings);
//! * `{"type":"state","id":N,"state":"running"}` — lifecycle
//!   transitions;
//! * `{"type":"done","id":N,"outcome":..,"solution":{..}}` — the
//!   terminal record, floats as `f64` bit-pattern hex like the
//!   checkpoint format.
//!
//! Durability policy: every record is flushed; `admit` and `done`
//! records are additionally fsynced (`sync_data`) — those two are the
//! moments a crash must not un-happen. `state` and `checkpoint` records
//! ride the next sync; losing one costs a warm resume, never an admitted
//! job.
//!
//! The file is bounded by **live** jobs, not history: terminal records
//! evict the job from the in-memory live table, and once enough dead
//! records accumulate the journal compacts — live records are rewritten
//! to a temp file, fsynced, and atomically renamed over the journal.
//! Startup recovery always compacts, so a torn tail never survives into
//! the next append.
//!
//! Failure containment: every write routes through the `io.write` /
//! `io.fsync` / `io.rename` fault sites, and any error — injected or
//! real — permanently degrades the journal (`serve.journal.degraded`
//! counter, one warning) instead of failing jobs. A degraded server
//! keeps completing jobs in memory; it just stops being crash-proof.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use svtox_fault::{Fault, Site};
use svtox_obs::{json, Obs};

use crate::job::{JobResult, JobSpec, SolutionSummary};

/// The journal file name inside the `--journal` directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// The only format version this build reads and writes.
pub const JOURNAL_VERSION: u64 = 1;

/// Terminal records tolerated in the file before a compaction rewrites
/// it down to live jobs.
const COMPACT_DEAD_THRESHOLD: usize = 32;

/// A non-terminal job as the journal tracks it (the compaction source
/// and the recovery product).
#[derive(Debug, Clone)]
pub struct LiveJob {
    /// The admitted spec.
    pub spec: JobSpec,
    /// `queued` or `running`.
    pub state: &'static str,
    /// Checkpoint file name, relative to the journal directory.
    pub checkpoint: Option<String>,
}

struct Active {
    file: File,
    live: BTreeMap<u64, LiveJob>,
    dead_since_compact: usize,
}

/// The journal handle. Cheap methods, one mutex; `None` inside the
/// mutex means disabled — either never configured or degraded.
pub struct Journal {
    dir: PathBuf,
    obs: Obs,
    fault: Fault,
    active: Mutex<Option<Active>>,
}

impl Journal {
    /// A journal that was never configured: every record is a no-op.
    #[must_use]
    pub fn inactive() -> Self {
        Self {
            dir: PathBuf::new(),
            obs: Obs::disabled(),
            fault: Fault::disabled(),
            active: Mutex::new(None),
        }
    }

    /// Opens the journal in `dir`, seeding its live table with the
    /// recovered non-terminal jobs, and immediately compacts so the file
    /// starts bounded and clean (no torn tail, no dead history).
    ///
    /// Never fails: any I/O error degrades the returned handle instead
    /// (`serve.journal.degraded`), because durability is an upgrade, not
    /// a precondition for serving.
    #[must_use]
    pub fn open(dir: &Path, live: BTreeMap<u64, LiveJob>, obs: &Obs, fault: &Fault) -> Self {
        let journal = Self {
            dir: dir.to_path_buf(),
            obs: obs.clone(),
            fault: fault.clone(),
            active: Mutex::new(None),
        };
        let opened = std::fs::create_dir_all(dir)
            .map_err(|e| io::Error::other(format!("create {}: {e}", dir.display())))
            .and_then(|()| journal.rewrite(&live))
            .and_then(|()| OpenOptions::new().append(true).open(dir.join(JOURNAL_FILE)));
        match opened {
            Ok(file) => {
                *journal.active.lock().expect("journal lock") = Some(Active {
                    file,
                    live,
                    dead_since_compact: 0,
                });
            }
            Err(e) => {
                eprintln!("warning: journal disabled: {e}");
                journal.obs.add("serve.journal.degraded", 1);
            }
        }
        journal
    }

    /// Whether records are currently being persisted.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active.lock().expect("journal lock").is_some()
    }

    /// The journal directory (empty for inactive handles).
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The checkpoint file for job `id` (`DIR/job-ID.ckpt`).
    #[must_use]
    pub fn checkpoint_path(&self, id: u64) -> PathBuf {
        self.dir.join(checkpoint_name(id))
    }

    /// Records an admission: the full spec plus the job's checkpoint
    /// path, fsynced — after this returns, a crash cannot lose the job.
    pub fn admit(&self, id: u64, spec: &JobSpec) {
        let name = checkpoint_name(id);
        let line = format!(
            "{{\"type\":\"admit\",\"id\":{id},\"spec\":{}}}\n{{\"type\":\"checkpoint\",\"id\":{id},\"path\":{}}}\n",
            spec.to_journal_value(),
            json::Value::Str(name.clone()),
        );
        self.with_active("admit", |active, fault| {
            active.live.insert(
                id,
                LiveJob {
                    spec: spec.clone(),
                    state: "queued",
                    checkpoint: Some(name.clone()),
                },
            );
            append_synced(&mut active.file, &line, fault, "journal admit")
        });
    }

    /// Records a lifecycle transition (`running`). Flushed, not fsynced.
    pub fn state(&self, id: u64, state: &'static str) {
        let line = format!("{{\"type\":\"state\",\"id\":{id},\"state\":\"{state}\"}}\n");
        self.with_active("state", |active, fault| {
            if let Some(job) = active.live.get_mut(&id) {
                job.state = state;
            }
            append_flushed(&mut active.file, &line, fault, "journal state")
        });
    }

    /// Records a terminal outcome (fsynced), evicts the job from the
    /// live table, deletes its checkpoint files, and compacts once
    /// enough dead records have accumulated.
    pub fn done(&self, id: u64, result: &JobResult) {
        let line = format!(
            "{{\"type\":\"done\",\"id\":{id},\"result\":{}}}\n",
            result_to_value(result)
        );
        let mut compacted = false;
        let recorded = self.with_active("done", |active, fault| {
            active.live.remove(&id);
            active.dead_since_compact += 1;
            append_synced(&mut active.file, &line, fault, "journal done")?;
            if active.dead_since_compact >= COMPACT_DEAD_THRESHOLD {
                compacted = true;
            }
            Ok(())
        });
        if recorded {
            // Outside the append: checkpoint files of a terminal job are
            // garbage. Best-effort removal bounds the directory the same
            // way compaction bounds the journal.
            remove_checkpoints(&self.dir, id);
            if compacted {
                self.compact();
            }
        }
    }

    /// Rewrites the journal down to the live table (temp + fsync +
    /// atomic rename), resetting the dead-record count. Public so tests
    /// and chaos scenarios can force a rotation.
    pub fn compact(&self) {
        let mut guard = self.active.lock().expect("journal lock");
        let Some(active) = guard.take() else { return };
        let live = active.live;
        drop(active.file);
        match self.rewrite(&live).and_then(|()| {
            OpenOptions::new()
                .append(true)
                .open(self.dir.join(JOURNAL_FILE))
        }) {
            Ok(file) => {
                *guard = Some(Active {
                    file,
                    live,
                    dead_since_compact: 0,
                });
                self.obs.add("serve.journal.compactions", 1);
            }
            Err(e) => {
                eprintln!("warning: journal compaction failed, journal disabled: {e}");
                self.obs.add("serve.journal.degraded", 1);
            }
        }
    }

    /// Drops the journal handle without recording anything — the test
    /// hook that makes an in-process "SIGKILL" look like a real one to
    /// the file: whatever was flushed is what recovery sees.
    pub fn freeze(&self) {
        *self.active.lock().expect("journal lock") = None;
    }

    /// Writes `header + live records` to a temp file and atomically
    /// renames it over the journal.
    fn rewrite(&self, live: &BTreeMap<u64, LiveJob>) -> io::Result<()> {
        let path = self.dir.join(JOURNAL_FILE);
        let tmp = self.dir.join(format!("{JOURNAL_FILE}.tmp"));
        let mut text = format!("{{\"type\":\"journal\",\"version\":{JOURNAL_VERSION}}}\n");
        for (id, job) in live {
            text.push_str(&format!(
                "{{\"type\":\"admit\",\"id\":{id},\"spec\":{}}}\n",
                job.spec.to_journal_value()
            ));
            if let Some(name) = &job.checkpoint {
                text.push_str(&format!(
                    "{{\"type\":\"checkpoint\",\"id\":{id},\"path\":{}}}\n",
                    json::Value::Str(name.clone())
                ));
            }
            if job.state != "queued" {
                text.push_str(&format!(
                    "{{\"type\":\"state\",\"id\":{id},\"state\":\"{}\"}}\n",
                    job.state
                ));
            }
        }
        self.fault.check_io(Site::FileWrite, "journal rewrite")?;
        let mut file = File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        self.fault
            .check_io(Site::FileFsync, "journal rewrite sync")?;
        file.sync_data()?;
        drop(file);
        self.fault.check_io(Site::FileRename, "journal rotate")?;
        std::fs::rename(&tmp, &path)
    }

    /// Runs `record` against the active file; any error degrades the
    /// journal permanently. Returns whether the record landed.
    fn with_active(
        &self,
        what: &str,
        record: impl FnOnce(&mut Active, &Fault) -> io::Result<()>,
    ) -> bool {
        let mut guard = self.active.lock().expect("journal lock");
        let Some(active) = guard.as_mut() else {
            return false;
        };
        match record(active, &self.fault) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("warning: journal {what} failed, journal disabled: {e}");
                *guard = None;
                self.obs.add("serve.journal.degraded", 1);
                false
            }
        }
    }
}

/// The checkpoint file name of job `id`.
#[must_use]
pub fn checkpoint_name(id: u64) -> String {
    format!("job-{id}.ckpt")
}

/// Removes a job's checkpoint file and its portfolio-member siblings
/// (`job-N.ckpt.SLUG`). Best-effort.
fn remove_checkpoints(dir: &Path, id: u64) {
    let base = checkpoint_name(id);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name == base || name.starts_with(&format!("{base}.")) {
            std::fs::remove_file(entry.path()).ok();
        }
    }
}

fn append_flushed(file: &mut File, line: &str, fault: &Fault, what: &str) -> io::Result<()> {
    fault.check_io(Site::FileWrite, what)?;
    file.write_all(line.as_bytes())?;
    file.flush()
}

fn append_synced(file: &mut File, line: &str, fault: &Fault, what: &str) -> io::Result<()> {
    append_flushed(file, line, fault, what)?;
    fault.check_io(Site::FileFsync, what)?;
    file.sync_data()
}

fn bits_hex(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

fn parse_bits(v: Option<&json::Value>) -> Option<f64> {
    let hex = v?.as_str()?;
    u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
}

/// Serializes a terminal result; every float is a bit-pattern hex
/// string, so replayed results are byte-identical to reported ones.
#[must_use]
pub fn result_to_value(result: &JobResult) -> json::Value {
    let mut obj = BTreeMap::new();
    obj.insert(
        "outcome".to_string(),
        json::Value::Str(result.outcome.to_string()),
    );
    obj.insert(
        "circuit".to_string(),
        json::Value::Str(result.circuit.clone()),
    );
    for (name, text) in [
        ("reason", &result.reason),
        ("error", &result.error),
        ("winner", &result.winner),
    ] {
        if let Some(text) = text {
            obj.insert(name.to_string(), json::Value::Str(text.clone()));
        }
    }
    if let Some(cells) = result.liberty_cells {
        obj.insert("liberty_cells".to_string(), json::Value::Num(cells as f64));
    }
    if let Some(baseline) = result.baseline_leakage_ua {
        obj.insert(
            "baseline_bits".to_string(),
            json::Value::Str(bits_hex(baseline)),
        );
    }
    if let Some(s) = &result.solution {
        let mut sol = BTreeMap::new();
        sol.insert("vector".to_string(), json::Value::Str(s.vector.clone()));
        sol.insert("choices".to_string(), json::Value::Str(s.choices.clone()));
        sol.insert(
            "leakage_ua_bits".to_string(),
            json::Value::Str(bits_hex(s.leakage_ua)),
        );
        sol.insert(
            "leakage_bits".to_string(),
            json::Value::Str(format!("{:016x}", s.leakage_bits)),
        );
        sol.insert(
            "delay_bits".to_string(),
            json::Value::Str(format!("{:016x}", s.delay_bits)),
        );
        sol.insert("leaves".to_string(), json::Value::Num(s.leaves as f64));
        sol.insert(
            "runtime_ms_bits".to_string(),
            json::Value::Str(bits_hex(s.runtime_ms)),
        );
        obj.insert("solution".to_string(), json::Value::Obj(sol));
    }
    json::Value::Obj(obj)
}

/// Parses a journal `done` result. `None` on any malformed field.
#[must_use]
pub fn result_from_value(v: &json::Value) -> Option<JobResult> {
    let outcome = match v.get("outcome")?.as_str()? {
        "complete" => "complete",
        "degraded" => "degraded",
        "failed" => "failed",
        _ => return None,
    };
    let text = |name: &str| {
        v.get(name)
            .and_then(json::Value::as_str)
            .map(str::to_string)
    };
    let solution = match v.get("solution") {
        None => None,
        Some(s) => Some(SolutionSummary {
            vector: s.get("vector")?.as_str()?.to_string(),
            choices: s.get("choices")?.as_str()?.to_string(),
            leakage_ua: parse_bits(s.get("leakage_ua_bits"))?,
            leakage_bits: u64::from_str_radix(s.get("leakage_bits")?.as_str()?, 16).ok()?,
            delay_bits: u64::from_str_radix(s.get("delay_bits")?.as_str()?, 16).ok()?,
            leaves: {
                let f = s.get("leaves")?.as_f64()?;
                (f.fract() == 0.0 && f >= 0.0).then_some(f as u64)?
            },
            runtime_ms: parse_bits(s.get("runtime_ms_bits"))?,
        }),
    };
    Some(JobResult {
        outcome,
        reason: text("reason"),
        error: text("error"),
        circuit: text("circuit")?,
        solution,
        winner: text("winner"),
        liberty_cells: v
            .get("liberty_cells")
            .and_then(json::Value::as_f64)
            .map(|f| f as usize),
        baseline_leakage_ua: parse_bits(v.get("baseline_bits")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("svtox-journal-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn spec(circuit: &str) -> JobSpec {
        JobSpec::from_json(&format!(
            "{{\"circuit\":\"{circuit}\",\"deadline_ms\":250,\"threads\":2}}"
        ))
        .expect("valid spec")
    }

    fn done_result(outcome: &'static str) -> JobResult {
        JobResult {
            outcome,
            reason: (outcome == "degraded").then(|| "time budget expired".to_string()),
            error: (outcome == "failed").then(|| "boom".to_string()),
            circuit: "c432".to_string(),
            solution: (outcome != "failed").then(|| SolutionSummary {
                vector: "0110".to_string(),
                choices: "0123".to_string(),
                leakage_ua: 12.5,
                leakage_bits: 12.5f64.to_bits(),
                delay_bits: (0.1f64 + 0.2).to_bits(),
                leaves: 99,
                runtime_ms: 3.25,
            }),
            winner: None,
            liberty_cells: None,
            baseline_leakage_ua: Some(44.25),
        }
    }

    #[test]
    fn result_floats_round_trip_bit_exactly() {
        for outcome in ["complete", "degraded", "failed"] {
            let result = done_result(outcome);
            let text = result_to_value(&result).to_string();
            let parsed = result_from_value(&json::parse(&text).expect("valid json"))
                .expect("well-formed result");
            assert_eq!(parsed.outcome, result.outcome);
            assert_eq!(parsed.reason, result.reason);
            assert_eq!(parsed.error, result.error);
            assert_eq!(
                parsed.baseline_leakage_ua.map(f64::to_bits),
                result.baseline_leakage_ua.map(f64::to_bits)
            );
            match (&parsed.solution, &result.solution) {
                (Some(p), Some(r)) => {
                    assert_eq!(p.vector, r.vector);
                    assert_eq!(p.choices, r.choices);
                    assert_eq!(p.leakage_ua.to_bits(), r.leakage_ua.to_bits());
                    assert_eq!(p.leakage_bits, r.leakage_bits);
                    assert_eq!(p.delay_bits, r.delay_bits);
                    assert_eq!(p.leaves, r.leaves);
                    assert_eq!(p.runtime_ms.to_bits(), r.runtime_ms.to_bits());
                }
                (None, None) => {}
                other => panic!("solution mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn spec_journal_round_trip_is_exact() {
        let spec = JobSpec::from_json(
            r#"{"circuit":"c432","penalty":7.5,"mode":"portfolio","threads":4,
                "vectors":128,"deadline_ms":321,"two_option":true,"uniform_stack":true}"#,
        )
        .unwrap();
        let value = spec.to_journal_value();
        let back = JobSpec::from_journal_value(&json::parse(&value.to_string()).unwrap())
            .expect("round trip");
        assert_eq!(back.circuit, spec.circuit);
        assert_eq!(back.penalty.to_bits(), spec.penalty.to_bits());
        assert_eq!(back.mode, spec.mode);
        assert_eq!(back.portfolio, spec.portfolio);
        assert_eq!(back.threads, spec.threads);
        assert_eq!(back.vectors, spec.vectors);
        assert_eq!(back.deadline, spec.deadline);
        assert_eq!(back.library.tradeoff_points, spec.library.tradeoff_points);
        assert!(back.library.uniform_stack);
    }

    #[test]
    fn admit_run_done_lifecycle_bounds_the_file() {
        let dir = temp_dir("lifecycle");
        let obs = Obs::enabled();
        let journal = Journal::open(&dir, BTreeMap::new(), &obs, Fault::disabled_ref());
        assert!(journal.is_active());
        journal.admit(1, &spec("c432"));
        journal.state(1, "running");
        journal.admit(2, &spec("c499"));
        journal.done(1, &done_result("complete"));
        journal.compact();

        // After compaction only the header and job 2 remain.
        let text = std::fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert!(text.contains("\"version\":1"), "{text}");
        assert!(text.contains("\"id\":2"), "{text}");
        assert!(!text.contains("\"id\":1"), "compacted away: {text}");
        assert!(!text.contains("\"done\""), "{text}");
        assert_eq!(
            obs.counter_snapshot().get("serve.journal.compactions"),
            Some(&1)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn done_removes_checkpoint_files() {
        let dir = temp_dir("ckpt-cleanup");
        let journal = Journal::open(
            &dir,
            BTreeMap::new(),
            &Obs::enabled(),
            Fault::disabled_ref(),
        );
        journal.admit(3, &spec("c432"));
        std::fs::write(journal.checkpoint_path(3), "meta\n").unwrap();
        std::fs::write(dir.join("job-3.ckpt.h1"), "meta\n").unwrap();
        std::fs::write(dir.join("job-30.ckpt"), "meta\n").unwrap();
        journal.done(3, &done_result("failed"));
        assert!(!journal.checkpoint_path(3).exists());
        assert!(!dir.join("job-3.ckpt.h1").exists());
        assert!(dir.join("job-30.ckpt").exists(), "prefix is exact");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_fault_degrades_loudly_instead_of_failing() {
        let dir = temp_dir("write-fault");
        let obs = Obs::enabled();
        // The open rewrite consumes the first hit; the nth=3 fire lands
        // on a later append.
        let plan =
            svtox_fault::FaultPlan::new(5).with_rule(Site::FileWrite, svtox_fault::Trigger::Nth(3));
        let fault = Fault::new(&plan);
        let journal = Journal::open(&dir, BTreeMap::new(), &obs, &fault);
        assert!(journal.is_active());
        journal.admit(1, &spec("c432"));
        journal.state(1, "running"); // third io.write hit: fires
        assert!(!journal.is_active(), "degraded after the injected fault");
        journal.done(1, &done_result("complete")); // silently dropped
        assert_eq!(
            obs.counter_snapshot().get("serve.journal.degraded"),
            Some(&1)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_fsync_and_rename_faults_degrade_too() {
        for (site, label) in [(Site::FileFsync, "fsync"), (Site::FileRename, "rename")] {
            let dir = temp_dir(&format!("fault-{label}"));
            let obs = Obs::enabled();
            let plan = svtox_fault::FaultPlan::new(5).with_rule(site, svtox_fault::Trigger::Nth(1));
            let journal = Journal::open(&dir, BTreeMap::new(), &obs, &Fault::new(&plan));
            // The opening rewrite itself hits fsync and rename once.
            assert!(!journal.is_active(), "{label} fault degrades at open");
            assert_eq!(
                obs.counter_snapshot().get("serve.journal.degraded"),
                Some(&1),
                "{label}"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn freeze_simulates_a_kill_for_recovery() {
        let dir = temp_dir("freeze");
        let journal = Journal::open(
            &dir,
            BTreeMap::new(),
            &Obs::enabled(),
            Fault::disabled_ref(),
        );
        journal.admit(1, &spec("c432"));
        journal.state(1, "running");
        journal.freeze();
        journal.done(1, &done_result("complete")); // lost, like a kill
        let recovered =
            recovery::replay(&dir.join(JOURNAL_FILE), Fault::disabled_ref()).expect("replays");
        assert_eq!(recovered.jobs.len(), 1);
        assert!(recovered.jobs[0].result.is_none(), "still live");
        assert_eq!(recovered.jobs[0].state, recovery::RecoveredState::Running);
        std::fs::remove_dir_all(&dir).ok();
    }
}
