//! Service-level acceptance tests.
//!
//! Two contracts from the issue that motivated the serve crate:
//!
//! * **identity** — a job submitted over HTTP returns the byte-identical
//!   solution of a single-shot local run, at any engine thread count;
//! * **scale** — 100 concurrent jobs all terminate in typed outcomes
//!   with zero hangs, and repeat-library jobs ride the cross-job caches.

use std::time::{Duration, Instant};

use svtox_cells::{Library, LibraryOptions};
use svtox_core::{DelayPenalty, ExecConfig, Mode, Problem, RunOutcome};
use svtox_netlist::generators::{random_dag, RandomDagSpec};
use svtox_netlist::{map_to_primitives, parse_bench, EditScript, MappingOptions};
use svtox_obs::json;
use svtox_serve::http::call;
use svtox_serve::loadgen::{self, LoadgenConfig};
use svtox_serve::{start, ServerConfig};
use svtox_sta::TimingConfig;
use svtox_tech::Technology;

/// A generated circuit small enough that the exact search exhausts in
/// well under a second — identity needs runs that truly complete.
fn identity_bench_text() -> String {
    let netlist =
        random_dag(&RandomDagSpec::new("serve-identity", 7, 4, 32, 5)).expect("spec is valid");
    netlist.to_bench()
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    let response = call(addr, "POST", path, body, Duration::from_secs(30)).expect("POST succeeds");
    (response.status, response.body)
}

fn get_json(addr: &str, path: &str) -> json::Value {
    let response = call(addr, "GET", path, "", Duration::from_secs(30)).expect("GET succeeds");
    json::parse(&response.body).expect("response is JSON")
}

fn wait_done(addr: &str, id: u64) -> json::Value {
    let give_up = Instant::now() + Duration::from_secs(120);
    loop {
        let doc = get_json(addr, &format!("/jobs/{id}"));
        if doc.get("state").and_then(|v| v.as_str()) == Some("done") {
            return doc;
        }
        assert!(Instant::now() < give_up, "job {id} hung");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn field<'a>(doc: &'a json::Value, name: &str) -> &'a str {
    doc.get(name)
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("missing `{name}` in {doc}"))
}

/// An HTTP-submitted job must reproduce a local single-shot run bit for
/// bit — same standby vector, same per-gate choices, same leakage and
/// delay down to the f64 bit patterns — swept across pool thread counts.
#[test]
fn http_job_is_byte_identical_to_a_local_run_across_thread_counts() {
    let bench = identity_bench_text();

    // The local reference: the same text through the same pipeline.
    let raw = parse_bench(&bench).expect("bench text parses");
    let netlist = map_to_primitives(&raw, MappingOptions::default()).expect("maps");
    let library = Library::new(Technology::predictive_65nm(), LibraryOptions::default())
        .expect("library characterizes");
    let problem = Problem::new(&netlist, &library, TimingConfig::default()).expect("problem");
    let RunOutcome::Complete {
        solution: reference,
        ..
    } = problem
        .optimizer(DelayPenalty::five_percent(), Mode::Proposed)
        .run(&ExecConfig::serial(), None)
    else {
        panic!("the local reference run did not complete");
    };
    let reference_vector: String = reference
        .vector
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect();
    let reference_choices: String = reference
        .choices
        .iter()
        .map(|c| char::from_digit(u32::from(*c), 10).unwrap())
        .collect();
    let reference_leakage = format!("{:016x}", reference.leakage.value().to_bits());
    let reference_delay = format!("{:016x}", reference.delay.value().to_bits());

    let handle = start(ServerConfig::default()).expect("server starts");
    let addr = handle.addr().to_string();
    for threads in [1usize, 2, 4] {
        let body = json::Value::Obj(
            [
                ("bench".to_string(), json::Value::Str(bench.clone())),
                ("threads".to_string(), json::Value::Num(threads as f64)),
                ("deadline_ms".to_string(), json::Value::Num(60_000.0)),
            ]
            .into_iter()
            .collect(),
        )
        .to_string();
        let (status, response) = post(&addr, "/jobs", &body);
        assert_eq!(status, 202, "{response}");
        let id = json::parse(&response)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_f64)
            .unwrap() as u64;
        let doc = wait_done(&addr, id);
        assert_eq!(field(&doc, "outcome"), "complete", "threads={threads}");
        assert_eq!(field(&doc, "vector"), reference_vector, "threads={threads}");
        assert_eq!(
            field(&doc, "choices"),
            reference_choices,
            "threads={threads}"
        );
        assert_eq!(
            field(&doc, "leakage_bits"),
            reference_leakage,
            "threads={threads}"
        );
        assert_eq!(
            field(&doc, "delay_bits"),
            reference_delay,
            "threads={threads}"
        );
    }
    handle.shutdown();
}

/// An ECO job — a spec carrying an `edits` script — must return the
/// bit-identical solution of a cold job submitted with the already-edited
/// netlist text, and resubmitting the same edit script must hit the
/// edited-netlist cache (keyed by post-edit content hash).
#[test]
fn eco_jobs_match_cold_jobs_and_hit_the_edited_netlist_cache() {
    let pre_text = identity_bench_text();
    let raw = parse_bench(&pre_text).expect("bench text parses");
    let pre = map_to_primitives(&raw, MappingOptions::default()).expect("maps");
    let pi0 = pre.net(pre.inputs()[0]).name().to_string();
    let pi1 = pre.net(pre.inputs()[1]).name().to_string();
    let po0 = pre.net(pre.outputs()[0]).name().to_string();
    let script_text =
        format!("add eco_a = NAND({pi0}, {pi1})\nadd eco_b = NOT(eco_a)\nrewire {po0} 0 eco_b\n");

    // The cold reference circuit: the same edit applied locally, shipped
    // as plain bench text.
    let script = EditScript::parse(&script_text).expect("script parses");
    let mut edited = pre.clone();
    script.apply(&mut edited).expect("script applies");
    let post_text = edited.to_bench();

    // Local cold reference on the identical in-memory post-edit netlist:
    // the ECO job must reproduce it bit for bit, including the per-gate
    // choices (same gate numbering).
    let library = Library::new(Technology::predictive_65nm(), LibraryOptions::default())
        .expect("library characterizes");
    let problem = Problem::new(&edited, &library, TimingConfig::default()).expect("problem");
    let RunOutcome::Complete {
        solution: reference,
        ..
    } = problem
        .optimizer(DelayPenalty::five_percent(), Mode::Proposed)
        .run(&ExecConfig::serial(), None)
    else {
        panic!("the local reference run did not complete");
    };
    let reference_vector: String = reference
        .vector
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect();
    let reference_choices: String = reference
        .choices
        .iter()
        .map(|c| char::from_digit(u32::from(*c), 10).unwrap())
        .collect();

    let handle = start(ServerConfig::default()).expect("server starts");
    let addr = handle.addr().to_string();
    let submit = |fields: Vec<(String, json::Value)>| {
        let body = json::Value::Obj(fields.into_iter().collect()).to_string();
        let (status, response) = post(&addr, "/jobs", &body);
        assert_eq!(status, 202, "{response}");
        json::parse(&response)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_f64)
            .unwrap() as u64
    };
    let eco_fields = || {
        vec![
            ("bench".to_string(), json::Value::Str(pre_text.clone())),
            ("edits".to_string(), json::Value::Str(script_text.clone())),
            ("deadline_ms".to_string(), json::Value::Num(60_000.0)),
        ]
    };
    let eco_doc = wait_done(&addr, submit(eco_fields()));
    let cold_doc = wait_done(
        &addr,
        submit(vec![
            ("bench".to_string(), json::Value::Str(post_text.clone())),
            ("deadline_ms".to_string(), json::Value::Num(60_000.0)),
        ]),
    );
    assert_eq!(field(&eco_doc, "outcome"), "complete");
    assert_eq!(field(&cold_doc, "outcome"), "complete");
    assert_eq!(field(&eco_doc, "vector"), reference_vector);
    assert_eq!(field(&eco_doc, "choices"), reference_choices);
    assert_eq!(
        field(&eco_doc, "leakage_bits"),
        format!("{:016x}", reference.leakage.value().to_bits())
    );
    assert_eq!(
        field(&eco_doc, "delay_bits"),
        format!("{:016x}", reference.delay.value().to_bits())
    );
    // The cold HTTP job went through a bench-text round trip, which may
    // renumber gates — permuting the choices string and the float
    // summation order (a few ulps of leakage) — but cannot change the
    // chosen standby vector or the solution's value beyond that noise.
    assert_eq!(field(&eco_doc, "vector"), field(&cold_doc, "vector"));
    let leakage_ua = |doc: &json::Value| {
        doc.get("leakage_ua")
            .and_then(json::Value::as_f64)
            .expect("leakage_ua present")
    };
    let (eco_ua, cold_ua) = (leakage_ua(&eco_doc), leakage_ua(&cold_doc));
    assert!(
        (eco_ua - cold_ua).abs() <= 1e-9 * cold_ua.abs(),
        "eco {eco_ua} vs cold {cold_ua}"
    );

    // Same edit script again: the edited netlist comes out of the cache.
    let rerun_doc = wait_done(&addr, submit(eco_fields()));
    assert_eq!(field(&rerun_doc, "outcome"), "complete");
    assert_eq!(field(&rerun_doc, "vector"), field(&eco_doc, "vector"));
    let metrics = call(&addr, "GET", "/metrics", "", Duration::from_secs(30))
        .expect("GET /metrics succeeds")
        .body;
    let counter = |name: &str| {
        metrics
            .lines()
            .find_map(|l| l.trim().strip_prefix(name))
            .unwrap_or_else(|| panic!("no `{name}` in metrics:\n{metrics}"))
            .trim()
            .parse::<u64>()
            .expect("counter is an integer")
    };
    assert_eq!(counter("serve.cache.eco_misses"), 1);
    assert_eq!(counter("serve.cache.eco_hits"), 1);
    handle.shutdown();
}

/// Two textual spellings of the same circuit — renamed interior wires, a
/// redundant duplicate gate, comments — must land on one netlist cache
/// entry (the cache keys by the post-strash structural hash), must bump
/// the cross-spelling dedupe counter, and must return byte-identical
/// solutions because both jobs optimize the very same cached netlist.
#[test]
fn two_spellings_of_one_circuit_share_a_netlist_cache_entry() {
    let spelling_a = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
                      t1 = NAND(a, b)\nt2 = NOR(t1, c)\ny = NOT(t2)\nz = NAND(t1, c)\n";
    // Same circuit: interior wires renamed, a structurally duplicate
    // (unused) gate added, comments sprinkled in. Strash collapses the
    // duplicate and ignores names, so the structural hash matches.
    let spelling_b = "# same circuit, spelled differently\n\
                      INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n\
                      w9 = NAND(a, b)\nextra = NAND(a, b)\n\
                      # the line above is redundant\n\
                      w8 = NOR(w9, c)\ny = NOT(w8)\nz = NAND(w9, c)\n";

    let handle = start(ServerConfig::default()).expect("server starts");
    let addr = handle.addr().to_string();
    let submit = |bench: &str| {
        let body = json::Value::Obj(
            [
                ("bench".to_string(), json::Value::Str(bench.to_string())),
                ("deadline_ms".to_string(), json::Value::Num(60_000.0)),
            ]
            .into_iter()
            .collect(),
        )
        .to_string();
        let (status, response) = post(&addr, "/jobs", &body);
        assert_eq!(status, 202, "{response}");
        json::parse(&response)
            .unwrap()
            .get("id")
            .and_then(json::Value::as_f64)
            .unwrap() as u64
    };
    let doc_a = wait_done(&addr, submit(spelling_a));
    let doc_b = wait_done(&addr, submit(spelling_b));
    assert_eq!(field(&doc_a, "outcome"), "complete");
    assert_eq!(field(&doc_b, "outcome"), "complete");
    // Both jobs ran the same Arc<Netlist> (spelling A's mapped form), so
    // the solutions agree down to the f64 bit patterns.
    assert_eq!(field(&doc_a, "vector"), field(&doc_b, "vector"));
    assert_eq!(field(&doc_a, "choices"), field(&doc_b, "choices"));
    assert_eq!(field(&doc_a, "leakage_bits"), field(&doc_b, "leakage_bits"));
    assert_eq!(field(&doc_a, "delay_bits"), field(&doc_b, "delay_bits"));

    let metrics = call(&addr, "GET", "/metrics", "", Duration::from_secs(30))
        .expect("GET /metrics succeeds")
        .body;
    let counter = |name: &str| {
        metrics
            .lines()
            .find_map(|l| l.trim().strip_prefix(name))
            .unwrap_or_else(|| panic!("no `{name}` in metrics:\n{metrics}"))
            .trim()
            .parse::<u64>()
            .expect("counter is an integer")
    };
    assert_eq!(counter("serve.cache.netlist_misses"), 1, "{metrics}");
    assert_eq!(counter("serve.cache.netlist_hits"), 1, "{metrics}");
    assert_eq!(counter("serve.cache.netlist_dedup_hits"), 1, "{metrics}");
    handle.shutdown();
}

/// The acceptance bar from the issue: 100 concurrent jobs, zero hangs,
/// every job in a typed outcome, and the shared caches carrying all the
/// repeat traffic (one characterization, 99 hits).
#[test]
fn one_hundred_concurrent_jobs_terminate_typed_with_zero_hangs() {
    let config = LoadgenConfig {
        jobs: 100,
        concurrency: 16,
        circuit: None,
        bench: Some(identity_bench_text()),
        deadline: Duration::from_secs(30),
        hang_timeout: Duration::from_secs(120),
        server: ServerConfig {
            runners: 4,
            queue_depth: 32,
            ..ServerConfig::default()
        },
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&config).expect("loadgen runs");
    assert_eq!(report.jobs, 100, "{}", report.render_text());
    assert_eq!(report.hangs, 0, "{}", report.render_text());
    assert_eq!(
        report.completed + report.degraded + report.failed,
        100,
        "every job typed: {}",
        report.render_text()
    );
    assert_eq!(report.failed, 0, "{}", report.render_text());
    assert!(report.metrics_ok);
    assert!(report.clean_shutdown);
    // Cross-job caches: one cold build each, everything else hits.
    assert_eq!(report.library_misses, 1, "{}", report.render_text());
    assert_eq!(report.library_hits, 99, "{}", report.render_text());
    assert_eq!(report.netlist_misses, 1, "{}", report.render_text());
    assert_eq!(report.netlist_hits, 99, "{}", report.render_text());
}
